//! The SSD media: a sparse, thread-safe block store.

use std::collections::HashMap;

use parking_lot::RwLock;

use crate::error::NvmeError;
use crate::Lba;

/// Blocks per extent in the sparse map. Extents are allocated lazily on first
/// write so that multi-terabyte namespaces cost nothing until used.
const BLOCKS_PER_EXTENT: u64 = 256;

/// A sparse block store modelling the SSD's media.
///
/// Reads of never-written blocks return zeroes, like a freshly formatted
/// namespace. All operations are thread-safe; concurrent writers to the same
/// block are serialized per extent.
///
/// # Examples
///
/// ```
/// use bam_nvme_sim::BlockStore;
/// let store = BlockStore::new(512, 1 << 20);
/// store.write_blocks(10, &[7u8; 1024]).unwrap();
/// let mut out = vec![0u8; 1024];
/// store.read_blocks(10, &mut out).unwrap();
/// assert!(out.iter().all(|&b| b == 7));
/// ```
pub struct BlockStore {
    block_size: usize,
    num_blocks: u64,
    extents: RwLock<HashMap<u64, Box<[u8]>>>,
}

impl std::fmt::Debug for BlockStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockStore")
            .field("block_size", &self.block_size)
            .field("num_blocks", &self.num_blocks)
            .field("resident_extents", &self.extents.read().len())
            .finish()
    }
}

impl BlockStore {
    /// Creates a store of `num_blocks` blocks of `block_size` bytes each.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero or `num_blocks` is zero.
    pub fn new(block_size: usize, num_blocks: u64) -> Self {
        assert!(
            block_size > 0 && num_blocks > 0,
            "block store dimensions must be non-zero"
        );
        Self {
            block_size,
            num_blocks,
            extents: RwLock::new(HashMap::new()),
        }
    }

    /// Logical block size in bytes.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Total number of logical blocks.
    pub fn num_blocks(&self) -> u64 {
        self.num_blocks
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.num_blocks * self.block_size as u64
    }

    /// Number of bytes of media actually resident in memory (for tests and
    /// memory accounting).
    pub fn resident_bytes(&self) -> u64 {
        self.extents.read().len() as u64 * BLOCKS_PER_EXTENT * self.block_size as u64
    }

    fn check_range(&self, slba: Lba, nblocks: u64) -> Result<(), NvmeError> {
        if slba.checked_add(nblocks).map(|end| end <= self.num_blocks) != Some(true) {
            return Err(NvmeError::LbaOutOfRange {
                slba,
                nblocks,
                capacity: self.num_blocks,
            });
        }
        Ok(())
    }

    /// Reads whole blocks starting at `slba` into `buf`.
    ///
    /// # Errors
    ///
    /// Returns [`NvmeError::LbaOutOfRange`] if the range exceeds the
    /// namespace, or [`NvmeError::UnalignedBuffer`] if `buf` is not a whole
    /// number of blocks.
    pub fn read_blocks(&self, slba: Lba, buf: &mut [u8]) -> Result<(), NvmeError> {
        if !buf.len().is_multiple_of(self.block_size) {
            return Err(NvmeError::UnalignedBuffer {
                len: buf.len(),
                block_size: self.block_size,
            });
        }
        let nblocks = (buf.len() / self.block_size) as u64;
        self.check_range(slba, nblocks)?;
        let extents = self.extents.read();
        for i in 0..nblocks {
            let lba = slba + i;
            let extent_id = lba / BLOCKS_PER_EXTENT;
            let offset_in_extent = (lba % BLOCKS_PER_EXTENT) as usize * self.block_size;
            let dst = &mut buf[(i as usize) * self.block_size..][..self.block_size];
            match extents.get(&extent_id) {
                Some(extent) => dst
                    .copy_from_slice(&extent[offset_in_extent..offset_in_extent + self.block_size]),
                None => dst.fill(0),
            }
        }
        Ok(())
    }

    /// Writes whole blocks starting at `slba` from `data`.
    ///
    /// # Errors
    ///
    /// Returns [`NvmeError::LbaOutOfRange`] if the range exceeds the
    /// namespace, or [`NvmeError::UnalignedBuffer`] if `data` is not a whole
    /// number of blocks.
    pub fn write_blocks(&self, slba: Lba, data: &[u8]) -> Result<(), NvmeError> {
        if !data.len().is_multiple_of(self.block_size) {
            return Err(NvmeError::UnalignedBuffer {
                len: data.len(),
                block_size: self.block_size,
            });
        }
        let nblocks = (data.len() / self.block_size) as u64;
        self.check_range(slba, nblocks)?;
        let mut extents = self.extents.write();
        let extent_bytes = BLOCKS_PER_EXTENT as usize * self.block_size;
        for i in 0..nblocks {
            let lba = slba + i;
            let extent_id = lba / BLOCKS_PER_EXTENT;
            let offset_in_extent = (lba % BLOCKS_PER_EXTENT) as usize * self.block_size;
            let extent = extents
                .entry(extent_id)
                .or_insert_with(|| vec![0u8; extent_bytes].into_boxed_slice());
            extent[offset_in_extent..offset_in_extent + self.block_size]
                .copy_from_slice(&data[(i as usize) * self.block_size..][..self.block_size]);
        }
        Ok(())
    }

    /// Writes an arbitrary byte range (not necessarily block aligned) at byte
    /// offset `byte_offset`. Convenience for loading datasets onto the media.
    ///
    /// # Errors
    ///
    /// Returns [`NvmeError::LbaOutOfRange`] if the range exceeds capacity.
    pub fn write_bytes(&self, byte_offset: u64, data: &[u8]) -> Result<(), NvmeError> {
        if data.is_empty() {
            return Ok(());
        }
        let bs = self.block_size as u64;
        let first_lba = byte_offset / bs;
        let last_lba = (byte_offset + data.len() as u64 - 1) / bs;
        let nblocks = last_lba - first_lba + 1;
        self.check_range(first_lba, nblocks)?;
        // Read-modify-write the covering block range.
        let mut tmp = vec![0u8; (nblocks * bs) as usize];
        self.read_blocks(first_lba, &mut tmp)?;
        let start = (byte_offset - first_lba * bs) as usize;
        tmp[start..start + data.len()].copy_from_slice(data);
        self.write_blocks(first_lba, &tmp)
    }

    /// Reads an arbitrary byte range at byte offset `byte_offset`.
    ///
    /// # Errors
    ///
    /// Returns [`NvmeError::LbaOutOfRange`] if the range exceeds capacity.
    pub fn read_bytes(&self, byte_offset: u64, buf: &mut [u8]) -> Result<(), NvmeError> {
        if buf.is_empty() {
            return Ok(());
        }
        let bs = self.block_size as u64;
        let first_lba = byte_offset / bs;
        let last_lba = (byte_offset + buf.len() as u64 - 1) / bs;
        let nblocks = last_lba - first_lba + 1;
        self.check_range(first_lba, nblocks)?;
        let mut tmp = vec![0u8; (nblocks * bs) as usize];
        self.read_blocks(first_lba, &mut tmp)?;
        let start = (byte_offset - first_lba * bs) as usize;
        buf.copy_from_slice(&tmp[start..start + buf.len()]);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_blocks_read_zero() {
        let s = BlockStore::new(512, 1024);
        let mut buf = vec![0xFFu8; 512];
        s.read_blocks(100, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn write_read_roundtrip_across_extents() {
        let s = BlockStore::new(512, 4096);
        let data: Vec<u8> = (0..512 * 600).map(|i| (i % 251) as u8).collect();
        // Spans more than one 256-block extent.
        s.write_blocks(200, &data).unwrap();
        let mut out = vec![0u8; data.len()];
        s.read_blocks(200, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn out_of_range_rejected() {
        let s = BlockStore::new(512, 16);
        let mut buf = vec![0u8; 512 * 2];
        assert!(matches!(
            s.read_blocks(15, &mut buf),
            Err(NvmeError::LbaOutOfRange { .. })
        ));
        assert!(matches!(
            s.write_blocks(16, &buf),
            Err(NvmeError::LbaOutOfRange { .. })
        ));
    }

    #[test]
    fn unaligned_buffer_rejected() {
        let s = BlockStore::new(512, 16);
        let mut buf = vec![0u8; 100];
        assert!(matches!(
            s.read_blocks(0, &mut buf),
            Err(NvmeError::UnalignedBuffer { .. })
        ));
    }

    #[test]
    fn byte_granular_io() {
        let s = BlockStore::new(512, 1024);
        let data = [9u8; 1000];
        s.write_bytes(300, &data).unwrap();
        let mut out = [0u8; 1000];
        s.read_bytes(300, &mut out).unwrap();
        assert_eq!(out, data);
        // Neighbouring bytes untouched.
        let mut b = [0u8; 1];
        s.read_bytes(299, &mut b).unwrap();
        assert_eq!(b[0], 0);
    }

    #[test]
    fn sparse_storage_is_lazy() {
        let s = BlockStore::new(512, 1 << 30); // "512 GiB" namespace
        assert_eq!(s.resident_bytes(), 0);
        s.write_blocks(12345, &[1u8; 512]).unwrap();
        assert!(s.resident_bytes() <= 256 * 512);
        assert_eq!(s.capacity_bytes(), 512u64 << 30);
    }
}
