//! Instrumentation hooks for event-driven performance simulation.
//!
//! The functional stack (queues, controller, media) has no notion of time;
//! `bam-sim` adds one by replaying the I/O stream through a discrete-event
//! engine. This module defines the boundary between the two: the functional
//! layers emit [`SimHook`] callbacks at the points of the Figure 2 pipeline
//! (submission, controller fetch, completion), and a hook implementation —
//! `bam_sim::TraceRecorder` in practice — captures them. Every method has a
//! no-op default, and the default installed hook is [`NopSimHook`], so the
//! functional path is untouched unless a simulation opts in.

/// One observed I/O command, as seen by the hook callbacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoEvent {
    /// Index of the device within its array (0 for standalone devices).
    pub device: u32,
    /// NVMe queue-pair id the command travelled through.
    pub queue: u16,
    /// `true` for writes, `false` for reads. Flushes are reported as writes
    /// of zero bytes.
    pub write: bool,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Starting LBA of the command (device-local; 0 for flushes). Lets span
    /// recorders correlate I/O events with the cache line they serviced.
    pub lba: u64,
}

/// Observer of the submission→fetch→completion pipeline.
///
/// All methods default to no-ops; implementations override only what they
/// need. Hooks run on the submitting / controller threads, so they must be
/// cheap and must not call back into the stack.
///
/// Ordering caveat: the stack submits synchronously (`submit_and_wait`), and
/// [`SimHook::on_submit`] is deliberately withheld until the command has
/// succeeded so that trace length and the stack's request metrics agree 1:1.
/// A command's `on_device_fetch`/`on_complete` therefore arrive *before* its
/// `on_submit`; hooks must not assume pipeline order across methods.
pub trait SimHook: Send + Sync {
    /// The GPU-side stack submitted a command that went on to complete
    /// successfully (emitted 1:1 with the stack's request metrics; failed
    /// commands appear in neither).
    fn on_submit(&self, _ev: &IoEvent) {}

    /// The controller fetched the command from the submission queue.
    fn on_device_fetch(&self, _ev: &IoEvent) {}

    /// The controller posted the command's completion entry.
    fn on_complete(&self, _ev: &IoEvent) {}
}

/// The default hook: ignores every event.
#[derive(Debug, Clone, Copy, Default)]
pub struct NopSimHook;

impl SimHook for NopSimHook {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nop_hook_accepts_events() {
        let ev = IoEvent {
            device: 0,
            queue: 1,
            write: false,
            bytes: 512,
            lba: 0,
        };
        let hook = NopSimHook;
        hook.on_submit(&ev);
        hook.on_device_fetch(&ev);
        hook.on_complete(&ev);
    }

    #[test]
    fn default_methods_are_noops_for_custom_impls() {
        struct CountSubmits(std::sync::atomic::AtomicU64);
        impl SimHook for CountSubmits {
            fn on_submit(&self, _ev: &IoEvent) {
                self.0.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
        }
        let h = CountSubmits(std::sync::atomic::AtomicU64::new(0));
        let ev = IoEvent {
            device: 2,
            queue: 3,
            write: true,
            bytes: 4096,
            lba: 8,
        };
        h.on_submit(&ev);
        h.on_device_fetch(&ev); // default no-op
        assert_eq!(h.0.load(std::sync::atomic::Ordering::Relaxed), 1);
    }
}
