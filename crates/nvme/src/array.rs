//! Multi-SSD aggregation.
//!
//! The BaM prototype scales random-access bandwidth by attaching multiple
//! SSDs behind a PCIe switch and spreading requests across them (§4.2, §4.3).
//! The evaluation uses two data layouts: *replication* (every SSD holds a
//! full copy; reads are spread round-robin — used for the graph and analytics
//! experiments) and *striping* (cache lines are interleaved across SSDs —
//! the layout a capacity-constrained deployment would use).

use std::sync::Arc;

use bam_mem::{BumpAllocator, ByteRegion};
use serde::{Deserialize, Serialize};

use crate::device::SsdDevice;
use crate::error::NvmeError;
use crate::queue::QueuePair;
use crate::spec::SsdSpec;
use crate::stats::StatsSnapshot;
use crate::{Lba, BLOCK_SIZE};

/// How a dataset's blocks are distributed across the SSDs of an array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DataLayout {
    /// Every SSD holds a complete copy of the dataset; requests may be sent
    /// to any SSD (the paper replicates data and round-robins requests).
    Replicated,
    /// Blocks are interleaved across SSDs in `chunk_blocks`-sized chunks.
    Striped {
        /// Stripe unit in logical blocks.
        chunk_blocks: u64,
    },
}

/// An array of simulated SSDs presenting a single logical block space.
pub struct SsdArray {
    devices: Vec<SsdDevice>,
    layout: DataLayout,
}

impl std::fmt::Debug for SsdArray {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SsdArray")
            .field("num_devices", &self.devices.len())
            .field("layout", &self.layout)
            .finish()
    }
}

impl SsdArray {
    /// Builds an array of `count` identical devices, each with
    /// `capacity_bytes` of media, DMA-attached to `dma_region`.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    pub fn new(
        spec: SsdSpec,
        count: usize,
        dma_region: Arc<ByteRegion>,
        capacity_bytes: u64,
        layout: DataLayout,
    ) -> Self {
        assert!(count > 0, "an SSD array needs at least one device");
        let devices = (0..count)
            .map(|_| SsdDevice::new(spec.clone(), dma_region.clone(), capacity_bytes))
            .collect();
        Self { devices, layout }
    }

    /// The layout policy of this array.
    pub fn layout(&self) -> DataLayout {
        self.layout
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// `true` if the array has no devices (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Access a device by index.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn device(&self, idx: usize) -> &SsdDevice {
        &self.devices[idx]
    }

    /// Iterates over the devices.
    pub fn iter(&self) -> impl Iterator<Item = &SsdDevice> {
        self.devices.iter()
    }

    /// Starts every device's controller thread.
    pub fn start(&mut self) {
        for d in &mut self.devices {
            d.start();
        }
    }

    /// Stops every device's controller thread.
    pub fn stop(&mut self) {
        for d in &mut self.devices {
            d.stop();
        }
    }

    /// Creates `queues_per_device` queue pairs of `entries` entries on every
    /// device, returning them grouped per device.
    ///
    /// # Errors
    ///
    /// Propagates queue-allocation failures.
    pub fn create_queues(
        &self,
        alloc: &BumpAllocator,
        queues_per_device: usize,
        entries: u32,
    ) -> Result<Vec<Vec<Arc<QueuePair>>>, NvmeError> {
        let mut all = Vec::with_capacity(self.devices.len());
        for d in &self.devices {
            let mut per_dev = Vec::with_capacity(queues_per_device);
            for _ in 0..queues_per_device {
                per_dev.push(d.create_queue_pair(alloc, entries)?);
            }
            all.push(per_dev);
        }
        Ok(all)
    }

    /// Maps a logical block of the dataset to `(device index, device LBA)`
    /// for a *read*, given a round-robin hint used under replication.
    pub fn locate_read(&self, logical_lba: Lba, rr_hint: usize) -> (usize, Lba) {
        match self.layout {
            DataLayout::Replicated => (rr_hint % self.devices.len(), logical_lba),
            DataLayout::Striped { chunk_blocks } => self.locate_striped(logical_lba, chunk_blocks),
        }
    }

    /// Maps a logical block to every `(device index, device LBA)` that must
    /// be written to keep the layout consistent.
    pub fn locate_write(&self, logical_lba: Lba) -> Vec<(usize, Lba)> {
        match self.layout {
            DataLayout::Replicated => (0..self.devices.len()).map(|d| (d, logical_lba)).collect(),
            DataLayout::Striped { chunk_blocks } => {
                vec![self.locate_striped(logical_lba, chunk_blocks)]
            }
        }
    }

    fn locate_striped(&self, logical_lba: Lba, chunk_blocks: u64) -> (usize, Lba) {
        let n = self.devices.len() as u64;
        let chunk = logical_lba / chunk_blocks;
        let within = logical_lba % chunk_blocks;
        let device = (chunk % n) as usize;
        let device_chunk = chunk / n;
        (device, device_chunk * chunk_blocks + within)
    }

    /// Preloads `data` onto the array starting at logical byte offset
    /// `byte_offset`, honouring the layout (replication copies to every
    /// device; striping splits).
    ///
    /// # Errors
    ///
    /// Propagates media errors.
    pub fn preload(&self, byte_offset: u64, data: &[u8]) -> Result<(), NvmeError> {
        match self.layout {
            DataLayout::Replicated => {
                for d in &self.devices {
                    d.media().write_bytes(byte_offset, data)?;
                }
                Ok(())
            }
            DataLayout::Striped { chunk_blocks } => {
                let chunk_bytes = chunk_blocks * BLOCK_SIZE as u64;
                assert_eq!(
                    byte_offset % chunk_bytes,
                    0,
                    "striped preload must start on a stripe-unit boundary"
                );
                let mut off = 0u64;
                while off < data.len() as u64 {
                    let logical_lba = (byte_offset + off) / BLOCK_SIZE as u64;
                    let (dev, dev_lba) = self.locate_striped(logical_lba, chunk_blocks);
                    let n = (chunk_bytes).min(data.len() as u64 - off) as usize;
                    self.devices[dev].media().write_bytes(
                        dev_lba * BLOCK_SIZE as u64,
                        &data[off as usize..off as usize + n],
                    )?;
                    off += n as u64;
                }
                Ok(())
            }
        }
    }

    /// Installs `hook` on every device's controller (device indices follow
    /// array order), or clears all hooks when `hook` is `None`.
    pub fn set_sim_hook(&self, hook: Option<Arc<dyn crate::hook::SimHook>>) {
        for (idx, d) in self.devices.iter().enumerate() {
            d.set_sim_hook(hook.clone(), idx as u32);
        }
    }

    /// Aggregated statistics across all devices.
    pub fn stats(&self) -> Vec<StatsSnapshot> {
        self.devices.iter().map(|d| d.stats()).collect()
    }

    /// Total commands completed across the array.
    pub fn total_commands(&self) -> u64 {
        self.stats().iter().map(|s| s.total_commands()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region() -> (Arc<ByteRegion>, BumpAllocator) {
        let r = Arc::new(ByteRegion::new(16 << 20));
        let a = BumpAllocator::new(r.len() as u64);
        (r, a)
    }

    #[test]
    fn replicated_preload_copies_everywhere() {
        let (r, _a) = region();
        let arr = SsdArray::new(
            SsdSpec::intel_optane_p5800x(),
            3,
            r,
            1 << 20,
            DataLayout::Replicated,
        );
        arr.preload(0, &[0xABu8; 2048]).unwrap();
        for d in arr.iter() {
            let mut out = [0u8; 2048];
            d.media().read_bytes(0, &mut out).unwrap();
            assert!(out.iter().all(|&b| b == 0xAB));
        }
    }

    #[test]
    fn replicated_reads_round_robin_and_writes_fan_out() {
        let (r, _a) = region();
        let arr = SsdArray::new(
            SsdSpec::intel_optane_p5800x(),
            4,
            r,
            1 << 20,
            DataLayout::Replicated,
        );
        let devices: Vec<usize> = (0..8).map(|i| arr.locate_read(10, i).0).collect();
        assert_eq!(devices, vec![0, 1, 2, 3, 0, 1, 2, 3]);
        assert_eq!(arr.locate_write(10).len(), 4);
    }

    #[test]
    fn striped_layout_interleaves_and_roundtrips() {
        let (r, _a) = region();
        let arr = SsdArray::new(
            SsdSpec::samsung_980pro(),
            4,
            r,
            1 << 20,
            DataLayout::Striped { chunk_blocks: 8 },
        );
        // Chunk c goes to device c % 4 at chunk index c / 4.
        assert_eq!(arr.locate_read(0, 99), (0, 0));
        assert_eq!(arr.locate_read(8, 99), (1, 0));
        assert_eq!(arr.locate_read(16, 99), (2, 0));
        assert_eq!(arr.locate_read(33, 99), (0, 9)); // chunk 4 → dev 0, chunk idx 1, block 1
                                                     // Preload then read back through the mapping.
        let data: Vec<u8> = (0..512 * 64).map(|i| (i % 249) as u8).collect();
        arr.preload(0, &data).unwrap();
        for lba in 0..64u64 {
            let (dev, dev_lba) = arr.locate_read(lba, 0);
            let mut out = [0u8; 512];
            arr.device(dev)
                .media()
                .read_bytes(dev_lba * 512, &mut out)
                .unwrap();
            assert_eq!(out[..], data[(lba as usize) * 512..][..512], "lba {lba}");
        }
    }

    #[test]
    fn write_targets_single_device_when_striped() {
        let (r, _a) = region();
        let arr = SsdArray::new(
            SsdSpec::samsung_pm1735(),
            2,
            r,
            1 << 20,
            DataLayout::Striped { chunk_blocks: 4 },
        );
        assert_eq!(arr.locate_write(5).len(), 1);
    }

    #[test]
    fn queues_created_on_every_device() {
        let (r, a) = region();
        let arr = SsdArray::new(
            SsdSpec::intel_optane_p5800x(),
            2,
            r,
            1 << 20,
            DataLayout::Replicated,
        );
        let queues = arr.create_queues(&a, 3, 64).unwrap();
        assert_eq!(queues.len(), 2);
        assert!(queues.iter().all(|q| q.len() == 3));
        assert_eq!(arr.device(0).controller().num_queues(), 3);
    }
}
