//! Error types for the NVMe simulator.

use crate::Lba;

/// Errors surfaced by the simulated NVMe device and block store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NvmeError {
    /// An LBA range exceeded the namespace capacity.
    LbaOutOfRange {
        /// Starting LBA of the offending access.
        slba: Lba,
        /// Number of blocks requested.
        nblocks: u64,
        /// Namespace capacity in blocks.
        capacity: u64,
    },
    /// A buffer length was not a multiple of the block size.
    UnalignedBuffer {
        /// Buffer length in bytes.
        len: usize,
        /// Device block size in bytes.
        block_size: usize,
    },
    /// A queue pair id was not registered with the controller.
    UnknownQueue {
        /// The offending queue id.
        queue_id: u16,
    },
    /// The queue size requested exceeds what the device supports.
    InvalidQueueSize {
        /// Requested entries.
        requested: u32,
        /// Maximum supported entries.
        max: u32,
    },
    /// The device reported a command failure (propagated from a completion).
    CommandFailed {
        /// Command identifier.
        cid: u16,
        /// Wire status.
        status: crate::command::NvmeStatus,
    },
}

impl std::fmt::Display for NvmeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NvmeError::LbaOutOfRange {
                slba,
                nblocks,
                capacity,
            } => write!(
                f,
                "lba range out of bounds: slba={slba} nblocks={nblocks} capacity={capacity}"
            ),
            NvmeError::UnalignedBuffer { len, block_size } => {
                write!(
                    f,
                    "buffer of {len} bytes is not a multiple of the {block_size}-byte block size"
                )
            }
            NvmeError::UnknownQueue { queue_id } => write!(f, "unknown queue pair {queue_id}"),
            NvmeError::InvalidQueueSize { requested, max } => {
                write!(f, "queue size {requested} exceeds device maximum {max}")
            }
            NvmeError::CommandFailed { cid, status } => {
                write!(f, "command {cid} failed with status {status:?}")
            }
        }
    }
}

impl std::error::Error for NvmeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = NvmeError::LbaOutOfRange {
            slba: 10,
            nblocks: 2,
            capacity: 8,
        };
        let msg = e.to_string();
        assert!(msg.contains("slba=10"));
        assert!(msg.chars().next().unwrap().is_lowercase());
        let e2 = NvmeError::UnalignedBuffer {
            len: 100,
            block_size: 512,
        };
        assert!(e2.to_string().contains("512"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NvmeError>();
    }
}
