//! NVMe command and completion entries and their wire encodings.
//!
//! Submission-queue entries are 64 bytes and completion-queue entries are
//! 16 bytes, as in the NVMe specification; both are stored in GPU memory in
//! the BaM prototype, so here they are encoded to/decoded from a
//! [`bam_mem::ByteRegion`].

use serde::{Deserialize, Serialize};

/// Size of a submission-queue entry in bytes.
pub const SQ_ENTRY_BYTES: usize = 64;
/// Size of a completion-queue entry in bytes.
pub const CQ_ENTRY_BYTES: usize = 16;

/// NVMe I/O opcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NvmeOpcode {
    /// Read blocks from media into the host/GPU buffer.
    Read,
    /// Write blocks from the host/GPU buffer to media.
    Write,
    /// Flush (no data transfer).
    Flush,
}

impl NvmeOpcode {
    fn to_wire(self) -> u8 {
        match self {
            NvmeOpcode::Flush => 0x00,
            NvmeOpcode::Write => 0x01,
            NvmeOpcode::Read => 0x02,
        }
    }

    fn from_wire(v: u8) -> Option<Self> {
        match v {
            0x00 => Some(NvmeOpcode::Flush),
            0x01 => Some(NvmeOpcode::Write),
            0x02 => Some(NvmeOpcode::Read),
            _ => None,
        }
    }
}

/// Completion status code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NvmeStatus {
    /// Command completed successfully.
    Success,
    /// The LBA range was out of bounds for the namespace.
    LbaOutOfRange,
    /// An injected or internal device error.
    InternalError,
    /// The opcode was not recognised.
    InvalidOpcode,
}

impl NvmeStatus {
    fn to_wire(self) -> u16 {
        match self {
            NvmeStatus::Success => 0x0000,
            NvmeStatus::LbaOutOfRange => 0x0080,
            NvmeStatus::InternalError => 0x0006,
            NvmeStatus::InvalidOpcode => 0x0001,
        }
    }

    fn from_wire(v: u16) -> Self {
        match v {
            0x0000 => NvmeStatus::Success,
            0x0080 => NvmeStatus::LbaOutOfRange,
            0x0006 => NvmeStatus::InternalError,
            _ => NvmeStatus::InvalidOpcode,
        }
    }

    /// `true` if the command succeeded.
    pub fn is_success(self) -> bool {
        self == NvmeStatus::Success
    }
}

/// An NVMe I/O submission command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NvmeCommand {
    /// I/O opcode.
    pub opcode: NvmeOpcode,
    /// Command identifier chosen by the submitter; echoed in the completion.
    pub cid: u16,
    /// Starting logical block address.
    pub slba: u64,
    /// Number of logical blocks to transfer (1-based, unlike raw NVMe).
    pub nlb: u32,
    /// Destination (read) or source (write) address in the DMA-visible
    /// memory region — GPU memory in BaM.
    pub dptr: u64,
}

impl NvmeCommand {
    /// Convenience constructor for a read command.
    pub fn read(cid: u16, slba: u64, nlb: u32, dptr: u64) -> Self {
        Self {
            opcode: NvmeOpcode::Read,
            cid,
            slba,
            nlb,
            dptr,
        }
    }

    /// Convenience constructor for a write command.
    pub fn write(cid: u16, slba: u64, nlb: u32, dptr: u64) -> Self {
        Self {
            opcode: NvmeOpcode::Write,
            cid,
            slba,
            nlb,
            dptr,
        }
    }

    /// Convenience constructor for a flush command.
    pub fn flush(cid: u16) -> Self {
        Self {
            opcode: NvmeOpcode::Flush,
            cid,
            slba: 0,
            nlb: 0,
            dptr: 0,
        }
    }

    /// Encodes the command into a 64-byte submission-queue entry.
    pub fn encode(&self) -> [u8; SQ_ENTRY_BYTES] {
        let mut e = [0u8; SQ_ENTRY_BYTES];
        e[0] = self.opcode.to_wire();
        e[2..4].copy_from_slice(&self.cid.to_le_bytes());
        e[8..16].copy_from_slice(&self.slba.to_le_bytes());
        e[16..20].copy_from_slice(&self.nlb.to_le_bytes());
        e[24..32].copy_from_slice(&self.dptr.to_le_bytes());
        // Byte 63 is a validity marker used only by the simulation to catch
        // decoding of never-written entries.
        e[63] = 0xA5;
        e
    }

    /// Decodes a submission-queue entry. Returns `None` if the entry was
    /// never written or carries an unknown opcode.
    pub fn decode(e: &[u8]) -> Option<Self> {
        if e.len() < SQ_ENTRY_BYTES || e[63] != 0xA5 {
            return None;
        }
        let opcode = NvmeOpcode::from_wire(e[0])?;
        Some(Self {
            opcode,
            cid: u16::from_le_bytes([e[2], e[3]]),
            slba: u64::from_le_bytes(e[8..16].try_into().expect("slice length checked")),
            nlb: u32::from_le_bytes(e[16..20].try_into().expect("slice length checked")),
            dptr: u64::from_le_bytes(e[24..32].try_into().expect("slice length checked")),
        })
    }

    /// Number of bytes moved by this command given a block size.
    pub fn transfer_bytes(&self, block_size: usize) -> u64 {
        u64::from(self.nlb) * block_size as u64
    }
}

/// An NVMe completion-queue entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NvmeCompletion {
    /// Command identifier of the completed command.
    pub cid: u16,
    /// Completion status.
    pub status: NvmeStatus,
    /// The submission-queue head pointer after the controller consumed this
    /// command — BaM's queue protocol uses this to free SQ slots (§3.3).
    pub sq_head: u16,
    /// Phase tag: flips every time the controller wraps the CQ, letting
    /// pollers distinguish new entries from stale ones.
    pub phase: bool,
}

impl NvmeCompletion {
    /// Encodes into a 16-byte completion-queue entry.
    pub fn encode(&self) -> [u8; CQ_ENTRY_BYTES] {
        let mut e = [0u8; CQ_ENTRY_BYTES];
        e[8..10].copy_from_slice(&self.sq_head.to_le_bytes());
        e[12..14].copy_from_slice(&self.cid.to_le_bytes());
        let sf: u16 = (self.status.to_wire() << 1) | u16::from(self.phase);
        e[14..16].copy_from_slice(&sf.to_le_bytes());
        e
    }

    /// Decodes a completion-queue entry (always succeeds; an all-zero entry
    /// decodes to a phase-0 success for CID 0, which pollers reject via the
    /// phase bit).
    pub fn decode(e: &[u8]) -> Self {
        let sf = u16::from_le_bytes([e[14], e[15]]);
        Self {
            cid: u16::from_le_bytes([e[12], e[13]]),
            status: NvmeStatus::from_wire(sf >> 1),
            sq_head: u16::from_le_bytes([e[8], e[9]]),
            phase: (sf & 1) == 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn command_roundtrip() {
        let c = NvmeCommand::read(0x1234, 0xDEAD_BEEF, 8, 0xABCD_EF01_2345);
        let enc = c.encode();
        assert_eq!(NvmeCommand::decode(&enc), Some(c));
        let w = NvmeCommand::write(7, 42, 1, 512);
        assert_eq!(NvmeCommand::decode(&w.encode()), Some(w));
        let f = NvmeCommand::flush(3);
        assert_eq!(NvmeCommand::decode(&f.encode()), Some(f));
    }

    #[test]
    fn decode_rejects_blank_entry() {
        assert_eq!(NvmeCommand::decode(&[0u8; SQ_ENTRY_BYTES]), None);
    }

    #[test]
    fn completion_roundtrip_preserves_phase_and_status() {
        for phase in [false, true] {
            for status in [
                NvmeStatus::Success,
                NvmeStatus::LbaOutOfRange,
                NvmeStatus::InternalError,
                NvmeStatus::InvalidOpcode,
            ] {
                let c = NvmeCompletion {
                    cid: 99,
                    status,
                    sq_head: 511,
                    phase,
                };
                assert_eq!(NvmeCompletion::decode(&c.encode()), c);
            }
        }
    }

    #[test]
    fn transfer_bytes() {
        let c = NvmeCommand::read(0, 0, 8, 0);
        assert_eq!(c.transfer_bytes(512), 4096);
    }

    #[test]
    fn status_success_helper() {
        assert!(NvmeStatus::Success.is_success());
        assert!(!NvmeStatus::InternalError.is_success());
    }
}
