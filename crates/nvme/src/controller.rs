//! The simulated NVMe controller.
//!
//! The controller implements the device half of the protocol in Figure 2 of
//! the paper: on observing a doorbell update (Ⓐ) it reads new SQ entries from
//! GPU memory (Ⓑ), processes each command against the media (Ⓒ), DMA-writes
//! read data into the GPU I/O buffer (Ⓓ), and finally writes a completion
//! entry — carrying the new SQ head — into the CQ in GPU memory (Ⓔ).

use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use bam_mem::ByteRegion;

use crate::block::BlockStore;
use crate::command::{NvmeCommand, NvmeCompletion, NvmeOpcode, NvmeStatus};
use crate::hook::{IoEvent, SimHook};
use crate::queue::QueuePair;
use crate::stats::ControllerStats;

/// A hook that lets tests and failure-injection benches force command
/// failures. Returning `Some(status)` makes the command complete with that
/// status without touching the media.
pub type FaultInjector = dyn Fn(&NvmeCommand) -> Option<NvmeStatus> + Send + Sync;

/// Device-side state of one queue pair.
#[derive(Debug, Default)]
struct DeviceQueueState {
    /// Next SQ slot the controller will consume.
    sq_head: u32,
    /// Next CQ slot the controller will fill.
    cq_tail: u32,
    /// Current CQ phase; flips on every CQ wrap.
    phase: bool,
    /// Last SQ tail doorbell value observed (to count doorbell observations).
    last_seen_tail: u32,
}

/// The controller: owns the media, serves the registered queue pairs, and
/// moves data to and from the shared (GPU) memory region.
pub struct NvmeController {
    store: Arc<BlockStore>,
    region: Arc<ByteRegion>,
    queues: RwLock<Vec<(Arc<QueuePair>, Mutex<DeviceQueueState>)>>,
    stats: Arc<ControllerStats>,
    fault_injector: RwLock<Option<Arc<FaultInjector>>>,
    /// Event-simulation hook plus the device index reported in its events.
    sim_hook: RwLock<Option<(Arc<dyn SimHook>, u32)>>,
}

impl std::fmt::Debug for NvmeController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NvmeController")
            .field("queues", &self.queues.read().len())
            .field("store", &self.store)
            .finish()
    }
}

impl NvmeController {
    /// Creates a controller serving `store`, performing DMA against `region`.
    pub fn new(store: Arc<BlockStore>, region: Arc<ByteRegion>) -> Self {
        Self {
            store,
            region,
            queues: RwLock::new(Vec::new()),
            stats: Arc::new(ControllerStats::new()),
            fault_injector: RwLock::new(None),
            sim_hook: RwLock::new(None),
        }
    }

    /// The media served by this controller.
    pub fn store(&self) -> &Arc<BlockStore> {
        &self.store
    }

    /// The DMA-visible region this controller reads from and writes to (the
    /// simulated GPU memory).
    pub fn dma_region(&self) -> Arc<ByteRegion> {
        self.region.clone()
    }

    /// Shared statistics handle.
    pub fn stats(&self) -> Arc<ControllerStats> {
        self.stats.clone()
    }

    /// Installs (or clears) a fault injector.
    pub fn set_fault_injector(&self, injector: Option<Arc<FaultInjector>>) {
        *self.fault_injector.write() = injector;
    }

    /// Installs (or clears) a [`SimHook`]. Events emitted by this controller
    /// carry `device_index` so arrays can tell their devices apart.
    pub fn set_sim_hook(&self, hook: Option<Arc<dyn SimHook>>, device_index: u32) {
        *self.sim_hook.write() = hook.map(|h| (h, device_index));
    }

    /// Registers a queue pair with the controller.
    pub fn register_queue(&self, qp: Arc<QueuePair>) {
        self.queues
            .write()
            .push((qp, Mutex::new(DeviceQueueState::default())));
    }

    /// Number of registered queue pairs.
    pub fn num_queues(&self) -> usize {
        self.queues.read().len()
    }

    fn execute(&self, cmd: &NvmeCommand) -> NvmeStatus {
        if let Some(injector) = self.fault_injector.read().clone() {
            if let Some(status) = injector(cmd) {
                self.stats.record_failure();
                return status;
            }
        }
        let bs = self.store.block_size();
        match cmd.opcode {
            NvmeOpcode::Read => {
                let mut buf = vec![0u8; cmd.nlb as usize * bs];
                match self.store.read_blocks(cmd.slba, &mut buf) {
                    Ok(()) => {
                        // DMA write into GPU memory (Figure 2, step Ⓓ).
                        self.region.write_bytes(cmd.dptr, &buf);
                        self.stats.record_read(u64::from(cmd.nlb));
                        NvmeStatus::Success
                    }
                    Err(_) => {
                        self.stats.record_failure();
                        NvmeStatus::LbaOutOfRange
                    }
                }
            }
            NvmeOpcode::Write => {
                let mut buf = vec![0u8; cmd.nlb as usize * bs];
                // DMA read from GPU memory.
                self.region.read_bytes(cmd.dptr, &mut buf);
                match self.store.write_blocks(cmd.slba, &buf) {
                    Ok(()) => {
                        self.stats.record_write(u64::from(cmd.nlb));
                        NvmeStatus::Success
                    }
                    Err(_) => {
                        self.stats.record_failure();
                        NvmeStatus::LbaOutOfRange
                    }
                }
            }
            NvmeOpcode::Flush => {
                self.stats.record_flush();
                NvmeStatus::Success
            }
        }
    }

    /// Services one queue pair: consumes every command between the internal
    /// SQ head and the doorbell tail, posting completions. Returns the number
    /// of commands processed.
    ///
    /// Completion posting respects CQ flow control: if the CQ is full (the
    /// host has not advanced the CQ head doorbell), processing stops until
    /// space is available.
    fn service_queue(&self, qp: &QueuePair, state: &Mutex<DeviceQueueState>) -> usize {
        let mut st = state.lock();
        let tail = qp.sq_tail();
        if tail != st.last_seen_tail {
            st.last_seen_tail = tail;
            self.stats.record_doorbell();
        }
        let hook = self.sim_hook.read().clone();
        let block_bytes = self.store.block_size() as u64;
        let entries = qp.entries;
        let mut processed = 0usize;
        while st.sq_head != tail {
            // CQ flow control: leave one slot free, as NVMe requires.
            let next_cq_tail = (st.cq_tail + 1) % entries;
            if next_cq_tail == qp.cq_head() {
                break;
            }
            let slot = st.sq_head;
            let Some(cmd) = qp.read_sq_entry(slot) else {
                // The submitter rang the doorbell before the entry landed;
                // retry later without advancing.
                break;
            };
            let sim_event = hook.as_ref().map(|(h, device)| {
                let ev = IoEvent {
                    device: *device,
                    queue: qp.id.0,
                    write: cmd.opcode != NvmeOpcode::Read,
                    bytes: match cmd.opcode {
                        NvmeOpcode::Flush => 0,
                        _ => u64::from(cmd.nlb) * block_bytes,
                    },
                    lba: match cmd.opcode {
                        NvmeOpcode::Flush => 0,
                        _ => cmd.slba,
                    },
                };
                h.on_device_fetch(&ev);
                (h, ev)
            });
            let status = self.execute(&cmd);
            st.sq_head = (st.sq_head + 1) % entries;
            // Publish the DMA'd data before the completion entry becomes
            // visible. The paper discusses exactly this ordering hazard for
            // GPUDirect RDMA writes (§4.4); the simulated interconnect
            // resolves it with a release fence paired with an acquire fence
            // in the polling thread, so BaM's "second I/O request"
            // workaround is unnecessary here.
            std::sync::atomic::fence(std::sync::atomic::Ordering::Release);
            let completion = NvmeCompletion {
                cid: cmd.cid,
                status,
                sq_head: st.sq_head as u16,
                phase: !st.phase, // the *new* entry carries the inverted phase of the previous lap
            };
            qp.write_cq_entry(st.cq_tail, &completion);
            if let Some((h, ev)) = sim_event {
                h.on_complete(&ev);
            }
            self.stats.record_completion();
            st.cq_tail += 1;
            if st.cq_tail == entries {
                st.cq_tail = 0;
                st.phase = !st.phase;
            }
            processed += 1;
        }
        processed
    }

    /// Polls every registered queue once. Returns the total number of
    /// commands processed. Intended to be called in a loop by the device
    /// thread, or directly by single-threaded tests.
    pub fn process_once(&self) -> usize {
        let queues = self.queues.read();
        let mut n = 0;
        for (qp, state) in queues.iter() {
            n += self.service_queue(qp, state);
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::QueueId;
    use bam_mem::BumpAllocator;

    struct Harness {
        region: Arc<ByteRegion>,
        alloc: BumpAllocator,
        ctrl: NvmeController,
        qp: Arc<QueuePair>,
    }

    fn harness(entries: u32) -> Harness {
        let region = Arc::new(ByteRegion::new(4 << 20));
        let alloc = BumpAllocator::new(region.len() as u64);
        let store = Arc::new(BlockStore::new(512, 1 << 16));
        let ctrl = NvmeController::new(store, region.clone());
        let qp = Arc::new(
            QueuePair::allocate(region.clone(), &alloc, QueueId(1), entries, 1024).unwrap(),
        );
        ctrl.register_queue(qp.clone());
        Harness {
            region,
            alloc,
            ctrl,
            qp,
        }
    }

    /// Submits a command the "raw" way (no BaM protocol): write entry, ring
    /// doorbell, process, read completion at the expected CQ slot.
    fn submit_sync(h: &Harness, slot: u32, tail_after: u32, cmd: NvmeCommand) -> NvmeCompletion {
        h.qp.write_sq_entry(slot, &cmd);
        h.qp.ring_sq_tail(tail_after);
        assert!(h.ctrl.process_once() >= 1);
        h.qp.read_cq_entry(slot)
    }

    #[test]
    fn read_command_moves_data_from_media_to_region() {
        let h = harness(16);
        // Put a recognizable pattern on the media.
        h.ctrl.store().write_blocks(100, &[0x5Au8; 1024]).unwrap();
        let dst = h.alloc.alloc(1024, 512).unwrap();
        let completion = submit_sync(&h, 0, 1, NvmeCommand::read(42, 100, 2, dst));
        assert_eq!(completion.cid, 42);
        assert!(completion.status.is_success());
        assert!(completion.phase, "first lap posts phase=true");
        assert_eq!(completion.sq_head, 1);
        let mut out = vec![0u8; 1024];
        h.region.read_bytes(dst, &mut out);
        assert!(out.iter().all(|&b| b == 0x5A));
    }

    #[test]
    fn write_command_moves_data_from_region_to_media() {
        let h = harness(16);
        let src = h.alloc.alloc(512, 512).unwrap();
        h.region.write_bytes(src, &[0xC3u8; 512]);
        let completion = submit_sync(&h, 0, 1, NvmeCommand::write(7, 55, 1, src));
        assert!(completion.status.is_success());
        let mut media = vec![0u8; 512];
        h.ctrl.store().read_blocks(55, &mut media).unwrap();
        assert!(media.iter().all(|&b| b == 0xC3));
    }

    #[test]
    fn out_of_range_read_fails_cleanly() {
        let h = harness(16);
        let dst = h.alloc.alloc(512, 512).unwrap();
        let completion = submit_sync(&h, 0, 1, NvmeCommand::read(9, u64::MAX - 10, 1, dst));
        assert_eq!(completion.status, NvmeStatus::LbaOutOfRange);
        assert_eq!(h.ctrl.stats().snapshot().failed_commands, 1);
    }

    #[test]
    fn phase_bit_flips_after_wrap() {
        let h = harness(4);
        let dst = h.alloc.alloc(512, 512).unwrap();
        // Submit 6 commands one at a time through a 4-entry queue, advancing
        // the CQ head as we consume completions.
        let mut phase_seen = Vec::new();
        for i in 0..6u32 {
            let slot = i % 4;
            let tail = (i + 1) % 4;
            h.qp.write_sq_entry(slot, &NvmeCommand::read(i as u16, 0, 1, dst));
            h.qp.ring_sq_tail(tail);
            assert_eq!(h.ctrl.process_once(), 1);
            let c = h.qp.read_cq_entry(slot);
            assert_eq!(c.cid, i as u16);
            phase_seen.push(c.phase);
            // Consume: advance CQ head doorbell past this entry.
            h.qp.ring_cq_head((slot + 1) % 4);
        }
        // First lap (slots 0..3) posts phase=true, second lap flips to false.
        assert_eq!(phase_seen, vec![true, true, true, true, false, false]);
    }

    #[test]
    fn cq_flow_control_stalls_when_host_does_not_consume() {
        let h = harness(4);
        let dst = h.alloc.alloc(512, 512).unwrap();
        // Fill the SQ with 3 commands (max for a 4-entry ring) and never move
        // the CQ head. The controller may post at most entries-1 = 3
        // completions... but flow control requires a free slot, so only 3 fit
        // if head==0: slots 0,1,2 (tail would become 3, next would collide).
        for i in 0..3u32 {
            h.qp.write_sq_entry(i, &NvmeCommand::read(i as u16, 0, 1, dst));
        }
        h.qp.ring_sq_tail(3);
        let processed = h.ctrl.process_once();
        assert_eq!(processed, 3);
        // Submit one more; CQ is now full (tail=3, head=0 → next==head).
        h.qp.write_sq_entry(3, &NvmeCommand::read(99, 0, 1, dst));
        h.qp.ring_sq_tail(0);
        assert_eq!(h.ctrl.process_once(), 0, "controller must stall on full CQ");
        // Consuming completions unblocks it.
        h.qp.ring_cq_head(2);
        assert_eq!(h.ctrl.process_once(), 1);
    }

    #[test]
    fn fault_injection_fails_matching_commands() {
        let h = harness(16);
        h.ctrl
            .set_fault_injector(Some(Arc::new(|cmd: &NvmeCommand| {
                (cmd.cid % 2 == 1).then_some(NvmeStatus::InternalError)
            })));
        let dst = h.alloc.alloc(512, 512).unwrap();
        let c0 = submit_sync(&h, 0, 1, NvmeCommand::read(0, 0, 1, dst));
        let c1 = submit_sync(&h, 1, 2, NvmeCommand::read(1, 0, 1, dst));
        assert!(c0.status.is_success());
        assert_eq!(c1.status, NvmeStatus::InternalError);
        h.ctrl.set_fault_injector(None);
        let c2 = submit_sync(&h, 2, 3, NvmeCommand::read(3, 0, 1, dst));
        assert!(c2.status.is_success());
    }

    #[test]
    fn flush_completes_without_data_movement() {
        let h = harness(8);
        let c = submit_sync(&h, 0, 1, NvmeCommand::flush(5));
        assert!(c.status.is_success());
        let snap = h.ctrl.stats().snapshot();
        assert_eq!(snap.flush_commands, 1);
        assert_eq!(snap.blocks_read, 0);
    }

    #[test]
    fn doorbell_observations_counted() {
        let h = harness(8);
        let dst = h.alloc.alloc(512, 512).unwrap();
        submit_sync(&h, 0, 1, NvmeCommand::read(0, 0, 1, dst));
        submit_sync(&h, 1, 2, NvmeCommand::read(1, 0, 1, dst));
        assert_eq!(h.ctrl.stats().snapshot().doorbell_observations, 2);
    }
}
