//! # bam-nvme-sim — NVMe SSD simulator
//!
//! The BaM prototype talks to off-the-shelf NVMe SSDs whose submission and
//! completion queues, I/O buffers, and doorbell registers have been mapped
//! into GPU memory (paper §4.1). This crate reproduces that device side in
//! software:
//!
//! * [`spec::SsdSpec`] — the performance/cost envelopes of the three SSD
//!   technologies in Table 2 (Intel Optane P5800X, Samsung PM1735,
//!   Samsung 980pro) plus a DRAM DIMM pseudo-device for cost comparison.
//! * [`queue::QueuePair`] — NVMe submission/completion rings with standard
//!   64-byte / 16-byte entries and phase bits, laid out in a shared
//!   [`bam_mem::ByteRegion`] exactly as the prototype lays them out in GPU
//!   memory.
//! * [`doorbell::Doorbell`] — write-only tail/head doorbell registers.
//! * [`block::BlockStore`] — the SSD media: a sparse, thread-safe block
//!   store.
//! * [`controller::NvmeController`] / [`device::SsdDevice`] — the SSD
//!   controller: fetches submission entries when a doorbell is rung,
//!   moves data between the media and GPU memory (peer-to-peer DMA in the
//!   prototype), and posts completion entries carrying the new SQ head —
//!   the exact mechanism BaM's queue protocol relies on (§3.3).
//! * [`array::SsdArray`] — multi-SSD aggregation with the replication and
//!   striping layouts used in the evaluation.
//! * [`hook::SimHook`] — no-op-by-default instrumentation points
//!   (submission, controller fetch, completion) through which `bam-sim`
//!   captures I/O streams for event-driven latency simulation.
//!
//! The controller is *functionally* accurate (real data movement, real
//! queue-protocol interactions); performance is modelled analytically by
//! `bam-timing` using the [`spec::SsdSpec`] envelopes, as described in
//! DESIGN.md.

pub mod array;
pub mod block;
pub mod command;
pub mod controller;
pub mod device;
pub mod doorbell;
pub mod error;
pub mod hook;
pub mod queue;
pub mod spec;
pub mod stats;

pub use array::{DataLayout, SsdArray};
pub use block::BlockStore;
pub use command::{NvmeCommand, NvmeCompletion, NvmeOpcode, NvmeStatus};
pub use controller::{FaultInjector, NvmeController};
pub use device::SsdDevice;
pub use doorbell::Doorbell;
pub use error::NvmeError;
pub use hook::{IoEvent, NopSimHook, SimHook};
pub use queue::{QueueId, QueuePair};
pub use spec::{SsdSpec, SsdTechnology};
pub use stats::{ControllerStats, StatsSnapshot};

/// Logical block address on an SSD.
pub type Lba = u64;

/// Default logical block size used throughout the reproduction (bytes).
///
/// The paper's microbenchmarks use 512 B blocks; cache lines are multiples of
/// this.
pub const BLOCK_SIZE: usize = 512;
