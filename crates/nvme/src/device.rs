//! A complete simulated SSD: spec + media + controller + service thread.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use bam_mem::{BumpAllocator, ByteRegion};

use crate::block::BlockStore;
use crate::controller::NvmeController;
use crate::error::NvmeError;
use crate::queue::{QueueId, QueuePair};
use crate::spec::SsdSpec;
use crate::stats::StatsSnapshot;
use crate::BLOCK_SIZE;

/// A simulated NVMe SSD.
///
/// `SsdDevice` ties together the device [`SsdSpec`], the media
/// ([`BlockStore`]), and the [`NvmeController`], and optionally runs the
/// controller on a dedicated background thread so that GPU threads submitting
/// requests see a fully asynchronous device — the same structure as the
/// prototype, where the SSD firmware runs concurrently with the GPU kernel.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use bam_mem::{BumpAllocator, ByteRegion};
/// use bam_nvme_sim::{SsdDevice, SsdSpec};
///
/// let gpu_mem = Arc::new(ByteRegion::new(16 << 20));
/// let alloc = BumpAllocator::new(gpu_mem.len() as u64);
/// let ssd = SsdDevice::new(SsdSpec::intel_optane_p5800x(), gpu_mem, 1 << 20);
/// let qp = ssd.create_queue_pair(&alloc, 256).unwrap();
/// assert_eq!(qp.entries, 256);
/// ```
pub struct SsdDevice {
    spec: SsdSpec,
    controller: Arc<NvmeController>,
    service_thread: Option<(Arc<AtomicBool>, JoinHandle<()>)>,
    next_queue_id: std::sync::atomic::AtomicU16,
}

impl std::fmt::Debug for SsdDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SsdDevice")
            .field("spec", &self.spec.name)
            .field("running", &self.service_thread.is_some())
            .finish()
    }
}

impl SsdDevice {
    /// Creates a device with `capacity_bytes` of media, DMA-attached to
    /// `dma_region` (the simulated GPU memory).
    ///
    /// The media capacity is given explicitly rather than taken from the spec
    /// so tests and scaled-down experiments can use small namespaces.
    pub fn new(spec: SsdSpec, dma_region: Arc<ByteRegion>, capacity_bytes: u64) -> Self {
        let num_blocks = capacity_bytes.div_ceil(BLOCK_SIZE as u64).max(1);
        let store = Arc::new(BlockStore::new(BLOCK_SIZE, num_blocks));
        let controller = Arc::new(NvmeController::new(store, dma_region));
        Self {
            spec,
            controller,
            service_thread: None,
            next_queue_id: std::sync::atomic::AtomicU16::new(1),
        }
    }

    /// The device specification.
    pub fn spec(&self) -> &SsdSpec {
        &self.spec
    }

    /// The controller (for registering queues, polling manually in tests, or
    /// installing fault injectors).
    pub fn controller(&self) -> &Arc<NvmeController> {
        &self.controller
    }

    /// Direct access to the media, used to preload datasets.
    pub fn media(&self) -> &Arc<BlockStore> {
        self.controller.store()
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> StatsSnapshot {
        self.controller.stats().snapshot()
    }

    /// Installs (or clears) a [`crate::hook::SimHook`] on this device's
    /// controller; events it emits carry `device_index`.
    pub fn set_sim_hook(&self, hook: Option<Arc<dyn crate::hook::SimHook>>, device_index: u32) {
        self.controller.set_sim_hook(hook, device_index);
    }

    /// Allocates and registers an I/O queue pair of `entries` entries whose
    /// rings live in `alloc`'s region (the GPU memory).
    ///
    /// # Errors
    ///
    /// Returns [`NvmeError::InvalidQueueSize`] if `entries` exceeds the
    /// spec's maximum queue depth or the region is exhausted.
    pub fn create_queue_pair(
        &self,
        alloc: &BumpAllocator,
        entries: u32,
    ) -> Result<Arc<QueuePair>, NvmeError> {
        let id = QueueId(self.next_queue_id.fetch_add(1, Ordering::Relaxed));
        let qp = Arc::new(QueuePair::allocate(
            self.controller.dma_region(),
            alloc,
            id,
            entries,
            self.spec.max_queue_depth,
        )?);
        self.controller.register_queue(qp.clone());
        Ok(qp)
    }

    /// Starts the controller service thread. Idempotent.
    pub fn start(&mut self) {
        if self.service_thread.is_some() {
            return;
        }
        let shutdown = Arc::new(AtomicBool::new(false));
        let ctrl = self.controller.clone();
        let flag = shutdown.clone();
        let name = format!("nvme-ctrl-{}", self.spec.name);
        let handle = std::thread::Builder::new()
            .name(name)
            .spawn(move || {
                let mut idle_spins = 0u32;
                while !flag.load(Ordering::Acquire) {
                    let n = ctrl.process_once();
                    if n == 0 {
                        idle_spins += 1;
                        if idle_spins > 64 {
                            std::thread::yield_now();
                        }
                        if idle_spins > 4096 {
                            std::thread::sleep(std::time::Duration::from_micros(20));
                        }
                    } else {
                        idle_spins = 0;
                    }
                }
            })
            .expect("failed to spawn controller thread");
        self.service_thread = Some((shutdown, handle));
    }

    /// Stops the controller service thread, if running.
    pub fn stop(&mut self) {
        if let Some((flag, handle)) = self.service_thread.take() {
            flag.store(true, Ordering::Release);
            let _ = handle.join();
        }
    }

    /// Whether the background service thread is running.
    pub fn is_running(&self) -> bool {
        self.service_thread.is_some()
    }
}

impl Drop for SsdDevice {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::NvmeCommand;

    #[test]
    fn background_thread_services_requests() {
        let region = Arc::new(ByteRegion::new(8 << 20));
        let alloc = BumpAllocator::new(region.len() as u64);
        let mut ssd = SsdDevice::new(SsdSpec::intel_optane_p5800x(), region.clone(), 1 << 20);
        ssd.media().write_blocks(7, &[0xEEu8; 512]).unwrap();
        let qp = ssd.create_queue_pair(&alloc, 64).unwrap();
        ssd.start();
        assert!(ssd.is_running());

        let dst = alloc.alloc(512, 512).unwrap();
        qp.write_sq_entry(0, &NvmeCommand::read(11, 7, 1, dst));
        qp.ring_sq_tail(1);

        // Poll for the completion the way a GPU thread would.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            let c = qp.read_cq_entry(0);
            if c.phase {
                assert_eq!(c.cid, 11);
                assert!(c.status.is_success());
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "timed out waiting for completion"
            );
            std::hint::spin_loop();
        }
        let mut out = [0u8; 512];
        region.read_bytes(dst, &mut out);
        assert!(out.iter().all(|&b| b == 0xEE));
        ssd.stop();
        assert!(!ssd.is_running());
    }

    #[test]
    fn queue_depth_limited_by_spec() {
        let region = Arc::new(ByteRegion::new(1 << 20));
        let alloc = BumpAllocator::new(region.len() as u64);
        let ssd = SsdDevice::new(SsdSpec::samsung_980pro(), region, 1 << 20);
        assert!(ssd.create_queue_pair(&alloc, 4096).is_err());
    }

    #[test]
    fn start_stop_idempotent() {
        let region = Arc::new(ByteRegion::new(1 << 20));
        let mut ssd = SsdDevice::new(SsdSpec::samsung_pm1735(), region, 1 << 20);
        ssd.start();
        ssd.start();
        ssd.stop();
        ssd.stop();
        assert!(!ssd.is_running());
    }
}
