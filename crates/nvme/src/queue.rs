//! NVMe submission/completion queue pairs laid out in a shared memory region.
//!
//! In the BaM prototype the rings live in GPU memory (pinned and mapped for
//! the SSD with GPUDirect RDMA) and the doorbells live in the SSD BAR mapped
//! into the GPU address space (§4.1). Here both sides — GPU threads and the
//! simulated controller — address the same [`ByteRegion`] and the same
//! [`Doorbell`] objects.

use std::sync::Arc;

use bam_mem::{BumpAllocator, ByteRegion, DevAddr};

use crate::command::{NvmeCommand, NvmeCompletion, CQ_ENTRY_BYTES, SQ_ENTRY_BYTES};
use crate::doorbell::Doorbell;
use crate::error::NvmeError;

/// Identifier of a queue pair on one controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueueId(pub u16);

/// An NVMe I/O queue pair: a submission ring, a completion ring, and their
/// tail/head doorbells.
///
/// `QueuePair` itself is just the shared-memory layout plus raw accessors; it
/// performs no synchronization. The BaM queue protocol (`bam-core`) layers
/// the ticket/turn/mark machinery on top of these accessors, and the
/// controller uses the device-side accessors.
#[derive(Debug)]
pub struct QueuePair {
    /// Queue id on its controller.
    pub id: QueueId,
    /// Number of entries in each ring.
    pub entries: u32,
    region: Arc<ByteRegion>,
    sq_base: DevAddr,
    cq_base: DevAddr,
    sq_tail_doorbell: Doorbell,
    cq_head_doorbell: Doorbell,
}

impl QueuePair {
    /// Allocates a queue pair's rings out of `region` using `alloc`.
    ///
    /// # Errors
    ///
    /// Returns [`NvmeError::InvalidQueueSize`] if `entries` is zero or larger
    /// than `max_entries`, or an allocation failure mapped to the same error
    /// if the region is exhausted.
    pub fn allocate(
        region: Arc<ByteRegion>,
        alloc: &BumpAllocator,
        id: QueueId,
        entries: u32,
        max_entries: u32,
    ) -> Result<Self, NvmeError> {
        if entries == 0 || entries > max_entries {
            return Err(NvmeError::InvalidQueueSize {
                requested: entries,
                max: max_entries,
            });
        }
        let sq_bytes = entries as u64 * SQ_ENTRY_BYTES as u64;
        let cq_bytes = entries as u64 * CQ_ENTRY_BYTES as u64;
        let sq_base = alloc
            .alloc(sq_bytes, 64)
            .map_err(|_| NvmeError::InvalidQueueSize {
                requested: entries,
                max: max_entries,
            })?;
        let cq_base = alloc
            .alloc(cq_bytes, 64)
            .map_err(|_| NvmeError::InvalidQueueSize {
                requested: entries,
                max: max_entries,
            })?;
        // Zero both rings so that phase-bit polling starts from a known state.
        region.fill(sq_base, sq_bytes as usize, 0);
        region.fill(cq_base, cq_bytes as usize, 0);
        Ok(Self {
            id,
            entries,
            region,
            sq_base,
            cq_base,
            sq_tail_doorbell: Doorbell::new(),
            cq_head_doorbell: Doorbell::new(),
        })
    }

    /// Base address of the submission ring in the shared region.
    pub fn sq_base(&self) -> DevAddr {
        self.sq_base
    }

    /// Base address of the completion ring in the shared region.
    pub fn cq_base(&self) -> DevAddr {
        self.cq_base
    }

    /// The shared region the rings live in.
    pub fn region(&self) -> &Arc<ByteRegion> {
        &self.region
    }

    // ---- host/GPU side ----

    /// Writes a command into submission slot `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= entries`.
    pub fn write_sq_entry(&self, slot: u32, cmd: &NvmeCommand) {
        assert!(slot < self.entries, "sq slot {slot} out of range");
        let addr = self.sq_base + u64::from(slot) * SQ_ENTRY_BYTES as u64;
        self.region.write_bytes(addr, &cmd.encode());
    }

    /// Reads the completion entry in slot `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= entries`.
    pub fn read_cq_entry(&self, slot: u32) -> NvmeCompletion {
        assert!(slot < self.entries, "cq slot {slot} out of range");
        let addr = self.cq_base + u64::from(slot) * CQ_ENTRY_BYTES as u64;
        let mut buf = [0u8; CQ_ENTRY_BYTES];
        self.region.read_bytes(addr, &mut buf);
        NvmeCompletion::decode(&buf)
    }

    /// Rings the submission-queue tail doorbell with the new tail index.
    pub fn ring_sq_tail(&self, tail: u32) {
        self.sq_tail_doorbell.ring(tail);
    }

    /// Rings the completion-queue head doorbell with the new head index.
    pub fn ring_cq_head(&self, head: u32) {
        self.cq_head_doorbell.ring(head);
    }

    /// Number of MMIO writes made to the SQ tail doorbell (a cost metric).
    pub fn sq_doorbell_writes(&self) -> u64 {
        self.sq_tail_doorbell.write_count()
    }

    /// Number of MMIO writes made to the CQ head doorbell.
    pub fn cq_doorbell_writes(&self) -> u64 {
        self.cq_head_doorbell.write_count()
    }

    // ---- device (controller) side ----

    /// Reads the submission entry in slot `slot` (controller side).
    ///
    /// Returns `None` if the slot has never been written with a valid
    /// command.
    pub fn read_sq_entry(&self, slot: u32) -> Option<NvmeCommand> {
        assert!(slot < self.entries, "sq slot {slot} out of range");
        let addr = self.sq_base + u64::from(slot) * SQ_ENTRY_BYTES as u64;
        let mut buf = [0u8; SQ_ENTRY_BYTES];
        self.region.read_bytes(addr, &mut buf);
        NvmeCommand::decode(&buf)
    }

    /// Writes a completion entry into slot `slot` (controller side).
    pub fn write_cq_entry(&self, slot: u32, completion: &NvmeCompletion) {
        assert!(slot < self.entries, "cq slot {slot} out of range");
        let addr = self.cq_base + u64::from(slot) * CQ_ENTRY_BYTES as u64;
        self.region.write_bytes(addr, &completion.encode());
    }

    /// Controller-side read of the SQ tail doorbell.
    pub fn sq_tail(&self) -> u32 {
        self.sq_tail_doorbell.read()
    }

    /// Controller-side read of the CQ head doorbell.
    pub fn cq_head(&self) -> u32 {
        self.cq_head_doorbell.read()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::NvmeOpcode;

    fn mk_pair(entries: u32) -> QueuePair {
        let region = Arc::new(ByteRegion::new(1 << 20));
        let alloc = BumpAllocator::new(region.len() as u64);
        QueuePair::allocate(region, &alloc, QueueId(1), entries, 1024).unwrap()
    }

    #[test]
    fn sq_entry_roundtrip_through_region() {
        let qp = mk_pair(64);
        let cmd = NvmeCommand::read(7, 1234, 8, 0x8000);
        qp.write_sq_entry(63, &cmd);
        assert_eq!(qp.read_sq_entry(63), Some(cmd));
        assert_eq!(qp.read_sq_entry(0), None, "unwritten slots decode to None");
    }

    #[test]
    fn cq_entry_roundtrip_through_region() {
        let qp = mk_pair(16);
        let c = NvmeCompletion {
            cid: 3,
            status: crate::command::NvmeStatus::Success,
            sq_head: 12,
            phase: true,
        };
        qp.write_cq_entry(5, &c);
        assert_eq!(qp.read_cq_entry(5), c);
        // Fresh entries decode with phase = false.
        assert!(!qp.read_cq_entry(0).phase);
    }

    #[test]
    fn doorbells_start_at_zero_and_count_writes() {
        let qp = mk_pair(16);
        assert_eq!(qp.sq_tail(), 0);
        assert_eq!(qp.cq_head(), 0);
        qp.ring_sq_tail(5);
        qp.ring_sq_tail(9);
        qp.ring_cq_head(2);
        assert_eq!(qp.sq_tail(), 9);
        assert_eq!(qp.cq_head(), 2);
        assert_eq!(qp.sq_doorbell_writes(), 2);
        assert_eq!(qp.cq_doorbell_writes(), 1);
    }

    #[test]
    fn oversized_queue_rejected() {
        let region = Arc::new(ByteRegion::new(1 << 20));
        let alloc = BumpAllocator::new(region.len() as u64);
        let err = QueuePair::allocate(region, &alloc, QueueId(0), 2048, 1024).unwrap_err();
        assert!(matches!(
            err,
            NvmeError::InvalidQueueSize {
                requested: 2048,
                max: 1024
            }
        ));
    }

    #[test]
    fn distinct_queues_do_not_alias() {
        let region = Arc::new(ByteRegion::new(1 << 20));
        let alloc = BumpAllocator::new(region.len() as u64);
        let q1 = QueuePair::allocate(region.clone(), &alloc, QueueId(1), 32, 1024).unwrap();
        let q2 = QueuePair::allocate(region, &alloc, QueueId(2), 32, 1024).unwrap();
        let cmd = NvmeCommand {
            opcode: NvmeOpcode::Write,
            cid: 1,
            slba: 9,
            nlb: 1,
            dptr: 0,
        };
        q1.write_sq_entry(0, &cmd);
        assert_eq!(q2.read_sq_entry(0), None);
    }
}
