//! Cost model behind Table 2 and the "21.7× cheaper than DRAM" headline.

use bam_nvme_sim::SsdSpec;
use serde::{Deserialize, Serialize};

/// Hardware cost model for provisioning a given dataset capacity either in
/// host DRAM (the DRAM-only baselines) or on an SSD array (BaM).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CostModel {
    /// DRAM price per GB (Table 2).
    pub dram_cost_per_gb: f64,
    /// Fixed cost of the PCIe expansion chassis + risers, in USD, amortized
    /// over the SSDs it hosts. Table 2's $/GB figures already include this
    /// share; the explicit field lets sensitivity studies vary it.
    pub expansion_chassis_usd: f64,
    /// Number of SSDs the chassis hosts when amortizing its cost.
    pub chassis_ssd_slots: u32,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            dram_cost_per_gb: 11.13,
            expansion_chassis_usd: 0.0,
            chassis_ssd_slots: 20,
        }
    }
}

impl CostModel {
    /// Cost in USD of provisioning `capacity_gb` of host DRAM.
    pub fn dram_cost_usd(&self, capacity_gb: f64) -> f64 {
        capacity_gb * self.dram_cost_per_gb
    }

    /// Cost in USD of provisioning `capacity_gb` on devices of `spec`
    /// (device cost includes the chassis share per Table 2, plus any extra
    /// chassis cost configured here).
    pub fn ssd_cost_usd(&self, spec: &SsdSpec, capacity_gb: f64) -> f64 {
        let device_cost = capacity_gb * spec.cost_per_gb;
        let num_devices = (capacity_gb * 1e9 / spec.capacity_bytes as f64).ceil();
        let chassis_share = self.expansion_chassis_usd / f64::from(self.chassis_ssd_slots);
        device_cost + num_devices * chassis_share
    }

    /// Cost advantage of an SSD solution over DRAM for the same capacity
    /// (Table 2 "Gain" column; 4.3–21.8×).
    pub fn gain_vs_dram(&self, spec: &SsdSpec, capacity_gb: f64) -> f64 {
        self.dram_cost_usd(capacity_gb) / self.ssd_cost_usd(spec, capacity_gb)
    }

    /// Renders Table 2 as rows of
    /// `(name, read IOPS @512B/4K, write IOPS @512B/4K, latency, DWPD, $/GB, gain)`.
    pub fn table2_rows(&self) -> Vec<Table2Row> {
        SsdSpec::table2()
            .into_iter()
            .map(|s| Table2Row {
                gain: self.dram_cost_per_gb / s.cost_per_gb,
                name: s.name.clone(),
                read_iops_512: s.read_iops_512,
                read_iops_4k: s.read_iops_4k,
                write_iops_512: s.write_iops_512,
                write_iops_4k: s.write_iops_4k,
                latency_us: s.read_latency_us,
                dwpd: s.dwpd,
                cost_per_gb: s.cost_per_gb,
            })
            .collect()
    }
}

/// One row of the regenerated Table 2.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2Row {
    /// Device name.
    pub name: String,
    /// Random-read IOPS at 512 B.
    pub read_iops_512: f64,
    /// Random-read IOPS at 4 KB.
    pub read_iops_4k: f64,
    /// Random-write IOPS at 512 B.
    pub write_iops_512: f64,
    /// Random-write IOPS at 4 KB.
    pub write_iops_4k: f64,
    /// Access latency in microseconds.
    pub latency_us: f64,
    /// Drive writes per day.
    pub dwpd: f64,
    /// Price per GB in USD.
    pub cost_per_gb: f64,
    /// Cost gain relative to DRAM.
    pub gain: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_cost_ratio() {
        // The abstract's "reducing hardware costs by up to 21.7x" comes from
        // the consumer NAND flash row.
        let m = CostModel::default();
        let gain = m.gain_vs_dram(&SsdSpec::samsung_980pro(), 10_000.0);
        assert!((20.0..23.0).contains(&gain), "gain={gain}");
    }

    #[test]
    fn optane_gain_is_over_4x() {
        let m = CostModel::default();
        let gain = m.gain_vs_dram(&SsdSpec::intel_optane_p5800x(), 10_000.0);
        assert!((4.0..5.0).contains(&gain), "gain={gain}");
    }

    #[test]
    fn chassis_cost_reduces_gain() {
        let base = CostModel::default();
        let pricey = CostModel {
            expansion_chassis_usd: 40_000.0,
            ..CostModel::default()
        };
        let spec = SsdSpec::samsung_980pro();
        assert!(pricey.gain_vs_dram(&spec, 10_000.0) < base.gain_vs_dram(&spec, 10_000.0));
    }

    #[test]
    fn table2_rows_complete() {
        let rows = CostModel::default().table2_rows();
        assert_eq!(rows.len(), 4);
        assert!((rows[0].gain - 1.0).abs() < 1e-9, "DRAM row gain is 1.0");
    }
}
