//! Achievable throughput of an SSD array behind a PCIe switch.

use bam_nvme_sim::SsdSpec;
use bam_pcie::LinkSpec;
use serde::{Deserialize, Serialize};

use crate::littles::achievable_throughput;

/// Peak command rate one NVMe queue pair can sustain.
///
/// Every queue pair serializes doorbell updates and head/tail maintenance; the
/// paper observes that BaM's performance only starts degrading below ~40
/// queue pairs for a 4-SSD configuration sustaining ~6 M IOPS (Fig 11),
/// i.e. ≈150 K IOPS per queue pair.
pub const PER_QUEUE_PAIR_IOPS: f64 = 150.0e3;

/// Analytical throughput model of `num_ssds` identical SSDs attached to a GPU
/// through per-device ×4 links and a shared GPU-side ×16 link.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SsdArrayModel {
    /// Device specification (Table 2 row).
    pub spec: SsdSpec,
    /// Number of devices in the array.
    pub num_ssds: usize,
    /// Per-device PCIe link.
    pub ssd_link: LinkSpec,
    /// GPU-side PCIe link shared by all devices.
    pub gpu_link: LinkSpec,
    /// Total number of NVMe queue pairs across the array.
    pub queue_pairs: u32,
    /// Queue depth per queue pair.
    pub queue_depth: u32,
}

impl SsdArrayModel {
    /// A model of the BaM prototype's storage side: `num_ssds` devices of
    /// `spec`, 128 queue pairs of depth 1024 per device, Gen4 links.
    pub fn prototype(spec: SsdSpec, num_ssds: usize) -> Self {
        Self {
            queue_pairs: spec.max_queue_pairs * num_ssds as u32,
            queue_depth: spec.max_queue_depth,
            spec,
            num_ssds,
            ssd_link: LinkSpec::gen4_x4(),
            gpu_link: LinkSpec::gen4_x16(),
        }
    }

    /// Replaces the total queue-pair count (used by the Fig 11 sweep).
    pub fn with_queue_pairs(mut self, queue_pairs: u32) -> Self {
        self.queue_pairs = queue_pairs;
        self
    }

    /// Maximum in-flight requests the queues can hold.
    pub fn max_outstanding(&self) -> u64 {
        u64::from(self.queue_pairs) * u64::from(self.queue_depth)
    }

    /// Peak read IOPS of the array for `access_bytes` accesses, before
    /// considering parallelism: bounded by media, per-device link, GPU link,
    /// and queue-pair protocol serialization.
    pub fn peak_read_iops(&self, access_bytes: u64) -> f64 {
        let media = self.spec.read_iops(access_bytes) * self.num_ssds as f64;
        let ssd_links = self.ssd_link.max_iops(access_bytes) * self.num_ssds as f64;
        let gpu_link = self.gpu_link.max_iops(access_bytes);
        let queues = f64::from(self.queue_pairs) * PER_QUEUE_PAIR_IOPS;
        media.min(ssd_links).min(gpu_link).min(queues)
    }

    /// Peak write IOPS of the array for `access_bytes` accesses.
    pub fn peak_write_iops(&self, access_bytes: u64) -> f64 {
        let media = self.spec.write_iops(access_bytes) * self.num_ssds as f64;
        let ssd_links = self.ssd_link.max_iops(access_bytes) * self.num_ssds as f64;
        let gpu_link = self.gpu_link.max_iops(access_bytes);
        let queues = f64::from(self.queue_pairs) * PER_QUEUE_PAIR_IOPS;
        media.min(ssd_links).min(gpu_link).min(queues)
    }

    /// Read IOPS achieved with `in_flight` concurrently outstanding requests
    /// (Little's-law limited below the knee, peak above it).
    pub fn read_iops(&self, access_bytes: u64, in_flight: u64) -> f64 {
        let in_flight = in_flight.min(self.max_outstanding()) as f64;
        achievable_throughput(
            in_flight,
            self.spec.read_latency_us,
            self.peak_read_iops(access_bytes),
        )
    }

    /// Write IOPS achieved with `in_flight` concurrently outstanding requests.
    pub fn write_iops(&self, access_bytes: u64, in_flight: u64) -> f64 {
        let in_flight = in_flight.min(self.max_outstanding()) as f64;
        achievable_throughput(
            in_flight,
            self.spec.write_latency_us,
            self.peak_write_iops(access_bytes),
        )
    }

    /// Read bandwidth (GB/s) achieved for the given pattern.
    pub fn read_bandwidth_gbps(&self, access_bytes: u64, in_flight: u64) -> f64 {
        self.read_iops(access_bytes, in_flight) * access_bytes as f64 / 1e9
    }

    /// Time in seconds to serve `num_requests` random reads of `access_bytes`
    /// with `in_flight` requests kept outstanding.
    pub fn read_time_s(&self, num_requests: u64, access_bytes: u64, in_flight: u64) -> f64 {
        if num_requests == 0 {
            return 0.0;
        }
        let iops = self.read_iops(access_bytes, in_flight);
        // Even a single request pays the device latency.
        (num_requests as f64 / iops).max(self.spec.read_latency_us * 1e-6)
    }

    /// Time in seconds to serve `num_requests` random writes.
    pub fn write_time_s(&self, num_requests: u64, access_bytes: u64, in_flight: u64) -> f64 {
        if num_requests == 0 {
            return 0.0;
        }
        let iops = self.write_iops(access_bytes, in_flight);
        (num_requests as f64 / iops).max(self.spec.write_latency_us * 1e-6)
    }

    /// Time for a mixed read+write demand, assuming reads and writes share
    /// the devices (sum of service demands).
    pub fn mixed_time_s(&self, reads: u64, writes: u64, access_bytes: u64, in_flight: u64) -> f64 {
        self.read_time_s(reads, access_bytes, in_flight)
            + self.write_time_s(writes, access_bytes, in_flight)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn optane(n: usize) -> SsdArrayModel {
        SsdArrayModel::prototype(SsdSpec::intel_optane_p5800x(), n)
    }

    #[test]
    fn ten_optane_reach_paper_peak_iops() {
        // §4.3: 10 Optane SSDs reach 45.8M read IOPS at 512B (90% of the
        // measured Gen4 x16 peak) and ~10.6M write IOPS.
        let m = optane(10);
        let read = m.read_iops(512, 1 << 22) / 1e6;
        let write = m.write_iops(512, 1 << 22) / 1e6;
        assert!((40.0..52.0).contains(&read), "read {read} MIOPS");
        assert!((9.0..11.0).contains(&write), "write {write} MIOPS");
    }

    #[test]
    fn single_ssd_read_iops_match_spec() {
        let m = optane(1);
        let iops = m.read_iops(512, 1 << 20);
        assert!((iops / 5.1e6 - 1.0).abs() < 0.01, "{iops}");
    }

    #[test]
    fn scaling_is_linear_until_gpu_link() {
        let one = optane(1).read_iops(512, 1 << 22);
        let four = optane(4).read_iops(512, 1 << 22);
        let ten = optane(10).read_iops(512, 1 << 22);
        assert!((four / one - 4.0).abs() < 0.05);
        // Ten SSDs would be 51M by media but the x16 link caps near 50M;
        // still at least 9x of one SSD.
        assert!(ten / one > 8.9);
    }

    #[test]
    fn few_threads_cannot_saturate() {
        // Fig 4 / §4.3: it takes ~16K-64K threads (in-flight requests) to
        // reach peak on one SSD; with only 1024 in flight throughput is lower.
        let m = optane(1);
        let peak = m.read_iops(512, 1 << 20);
        // 16 requests in flight over 11 µs ≈ 1.45 M/s, well below the 5.1 M
        // peak — the left edge of the Fig 4 curves.
        let tiny = m.read_iops(512, 16);
        assert!(tiny < peak * 0.5, "tiny={tiny} peak={peak}");
        // 1024 in flight is already enough for one Optane SSD, matching the
        // paper's note that only 16K-64K GPU threads saturate one drive.
        assert!((m.read_iops(512, 1024) / peak - 1.0).abs() < 1e-9);
    }

    #[test]
    fn queue_pair_sweep_matches_fig11_shape() {
        // With 4 SSDs at 4KB, peak is ~6M IOPS; at 128..48 queue pairs the
        // queue term (150K * qp) is not the bottleneck, below ~40 it is.
        let base = SsdArrayModel::prototype(SsdSpec::intel_optane_p5800x(), 4);
        let at_128 = base.clone().with_queue_pairs(128).read_iops(4096, 1 << 22);
        let at_48 = base.clone().with_queue_pairs(48).read_iops(4096, 1 << 22);
        let at_32 = base.clone().with_queue_pairs(32).read_iops(4096, 1 << 22);
        assert!((at_128 - at_48).abs() / at_128 < 0.05, "flat region");
        assert!(at_32 < at_128 * 0.9, "degrades below 40 QPs");
    }

    #[test]
    fn write_time_accounts_for_lower_write_iops() {
        let m = optane(1);
        let r = m.read_time_s(1_000_000, 512, 1 << 20);
        let w = m.write_time_s(1_000_000, 512, 1 << 20);
        assert!(w > r * 3.0, "Optane 512B write IOPS is ~5x lower than read");
    }

    #[test]
    fn nand_flash_array_is_slower_than_optane() {
        let o = SsdArrayModel::prototype(SsdSpec::intel_optane_p5800x(), 4);
        let n = SsdArrayModel::prototype(SsdSpec::samsung_980pro(), 4);
        let t_o = o.read_time_s(10_000_000, 4096, 1 << 22);
        let t_n = n.read_time_s(10_000_000, 4096, 1 << 22);
        // Fig 9: 980pro is ~2.7-3.2x slower end to end; on pure storage time
        // the ratio is roughly the 4KB IOPS ratio (1.5M vs 750K) = 2x.
        assert!(t_n / t_o > 1.8, "ratio {}", t_n / t_o);
    }
}
