//! GPU-side service rates.
//!
//! These constants turn counts observed in the functional simulation (cache
//! probes, hits, atomics) into GPU time. They are calibrated against two
//! paper measurements: the hot-cache delivery bandwidth of 430 GB/s
//! (Fig 6) and the 2–45 % cache-API overhead observed in the Fig 7
//! breakdown.

use serde::{Deserialize, Serialize};

/// Service rates of the GPU executing BaM's software cache and I/O stack.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GpuRateModel {
    /// Peak HBM bandwidth in GB/s (A100-80GB: ~2,039 GB/s).
    pub hbm_bandwidth_gbps: f64,
    /// Aggregate rate at which the GPU can execute cache probes
    /// (coalesced-group leaders querying line metadata), in probes/s.
    ///
    /// Calibrated so that a fully hot cache delivers ≈430 GB/s with 4 KB
    /// lines (Fig 6): ~105 M probes/s × 4 KB ≈ 430 GB/s.
    pub cache_probe_rate_per_s: f64,
    /// Aggregate rate of I/O-stack submissions (enqueue + doorbell protocol +
    /// completion polling bookkeeping), in requests/s. BaM demonstrates this
    /// comfortably exceeds 10 SSDs' worth of IOPS (§4.3), so it only matters
    /// when the storage is not the bottleneck.
    pub io_submission_rate_per_s: f64,
    /// Effective compute throughput used to convert a workload's declared
    /// work (edges relaxed, rows scanned, elements added) into seconds, in
    /// operations/s. Workloads provide their own op counts. Calibrated so
    /// that the graph workloads remain storage-I/O bound on the A100, as the
    /// paper observes (§5.2: 5-6.2 M IOPS, >80 % of peak, even with 4 SSDs).
    pub compute_ops_per_s: f64,
}

impl GpuRateModel {
    /// Rates for the NVIDIA A100-80GB used in the prototype (Table 1).
    pub fn a100() -> Self {
        Self {
            hbm_bandwidth_gbps: 2039.0,
            cache_probe_rate_per_s: 105.0e6,
            io_submission_rate_per_s: 120.0e6,
            compute_ops_per_s: 2.5e10,
        }
    }

    /// Time to execute `probes` cache probes (group leaders only).
    pub fn cache_probe_time_s(&self, probes: u64) -> f64 {
        probes as f64 / self.cache_probe_rate_per_s
    }

    /// Time to deliver `bytes` from cache lines resident in GPU memory.
    pub fn hot_delivery_time_s(&self, bytes: u64) -> f64 {
        bytes as f64 / (self.hbm_bandwidth_gbps * 1e9)
    }

    /// Time spent in the I/O stack software for `requests` submissions.
    pub fn io_stack_time_s(&self, requests: u64) -> f64 {
        requests as f64 / self.io_submission_rate_per_s
    }

    /// Time to execute `ops` units of workload compute.
    pub fn compute_time_s(&self, ops: u64) -> f64 {
        ops as f64 / self.compute_ops_per_s
    }

    /// Effective bandwidth (GB/s) of serving `accesses` hot-cache accesses of
    /// `line_bytes` each: bounded by probe rate and HBM bandwidth. This is
    /// the quantity plotted as the "hot" bars of Fig 6.
    pub fn hot_cache_bandwidth_gbps(&self, line_bytes: u64) -> f64 {
        let probe_limited = self.cache_probe_rate_per_s * line_bytes as f64 / 1e9;
        probe_limited.min(self.hbm_bandwidth_gbps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_cache_bandwidth_matches_fig6() {
        let g = GpuRateModel::a100();
        let bw = g.hot_cache_bandwidth_gbps(4096);
        assert!((380.0..480.0).contains(&bw), "bw={bw}");
        // With 512B lines the probe rate limits harder.
        assert!(g.hot_cache_bandwidth_gbps(512) < bw);
        // Huge lines are HBM-limited.
        assert!(g.hot_cache_bandwidth_gbps(1 << 20) <= g.hbm_bandwidth_gbps);
    }

    #[test]
    fn io_stack_exceeds_ten_ssds() {
        let g = GpuRateModel::a100();
        assert!(g.io_submission_rate_per_s > 45.8e6 * 2.0);
    }

    #[test]
    fn times_scale_linearly() {
        let g = GpuRateModel::a100();
        assert!(
            (g.cache_probe_time_s(2_000_000) / g.cache_probe_time_s(1_000_000) - 2.0).abs() < 1e-9
        );
        assert!(g.compute_time_s(0) == 0.0);
    }
}
