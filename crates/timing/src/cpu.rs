//! CPU software-stack rates used by the CPU-centric baselines.
//!
//! The paper attributes the poor performance of CPU-centric approaches to a
//! handful of CPU-side rate limits; each constant here is tied to the paper
//! measurement it reproduces.

use serde::{Deserialize, Serialize};

/// Rates and overheads of the host CPU software stack.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CpuStackModel {
    /// Maximum UVM/far-fault page-fault handling rate, faults/s. The paper
    /// measures the UVM fault handler saturating at ~500 K IOPS with the CPU
    /// 100 % utilized (Appendix B.2).
    pub page_fault_rate_per_s: f64,
    /// Per-I/O software overhead of the kernel storage stack (file system +
    /// block layer + driver), in microseconds per request per thread. The
    /// paper reports OS overhead reaching 36.4 % of access latency on fast
    /// SSDs (§2.2) and GDS only saturating PCIe at ≥32 KB granularity
    /// (Fig 5); 20 µs per I/O with 16 threads reproduces both.
    pub io_software_overhead_us: f64,
    /// Number of CPU threads concurrently driving storage I/O.
    pub io_threads: u32,
    /// Cost of one CPU→GPU kernel-launch + synchronization round trip, in
    /// microseconds (tiling pays this per tile).
    pub kernel_launch_sync_us: f64,
    /// CPU-side cost to find, allocate, and stage one tile/row-group for
    /// transfer, in microseconds per MiB staged. Calibrated so that RAPIDS'
    /// row-group init + cleanup dominates its query time (Fig 14: >73 % +
    /// 23 %).
    pub staging_overhead_us_per_mib: f64,
    /// Rate at which a CPU-mediated GPU file cache (ActivePointers/GPUfs) can
    /// serve misses, requests/s. The paper measures 823 K IOPS peak (§5.1).
    pub gpufs_miss_rate_per_s: f64,
}

impl CpuStackModel {
    /// The dual-EPYC host of the prototype (Table 1).
    pub fn epyc_host() -> Self {
        Self {
            page_fault_rate_per_s: 500.0e3,
            io_software_overhead_us: 20.0,
            io_threads: 16,
            kernel_launch_sync_us: 30.0,
            staging_overhead_us_per_mib: 110.0,
            gpufs_miss_rate_per_s: 823.0e3,
        }
    }

    /// Time for the CPU stack to issue `requests` storage I/Os (overheads
    /// overlap across `io_threads`).
    pub fn io_issue_time_s(&self, requests: u64) -> f64 {
        requests as f64 * self.io_software_overhead_us * 1e-6 / f64::from(self.io_threads)
    }

    /// Time to handle `faults` GPU page faults.
    pub fn page_fault_time_s(&self, faults: u64) -> f64 {
        faults as f64 / self.page_fault_rate_per_s
    }

    /// Time for `launches` kernel-launch/sync round trips.
    pub fn launch_sync_time_s(&self, launches: u64) -> f64 {
        launches as f64 * self.kernel_launch_sync_us * 1e-6
    }

    /// CPU time to stage `bytes` of tiles/row groups for transfer.
    pub fn staging_time_s(&self, bytes: u64) -> f64 {
        bytes as f64 / (1u64 << 20) as f64 * self.staging_overhead_us_per_mib * 1e-6
    }

    /// Time for a GPUfs-style CPU-mediated cache to serve `misses` misses.
    pub fn gpufs_miss_time_s(&self, misses: u64) -> f64 {
        misses as f64 / self.gpufs_miss_rate_per_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uvm_cannot_feed_one_consumer_ssd() {
        // Appendix B.2: 500K faults/s * 4KB pages ≈ 2 GB/s < one 980pro.
        let cpu = CpuStackModel::epyc_host();
        let faults_per_s = 1.0 / cpu.page_fault_time_s(1);
        let bw = faults_per_s * 4096.0 / 1e9;
        assert!(bw < 2.5, "bw={bw}");
    }

    #[test]
    fn gds_software_bound_at_4kb() {
        let cpu = CpuStackModel::epyc_host();
        // 128 GB at 4KB: issue time dominates wire time on a 26 GB/s link.
        let reqs = (128u64 << 30) / 4096;
        let issue = cpu.io_issue_time_s(reqs);
        let wire = (128u64 << 30) as f64 / 26e9;
        assert!(issue > 2.0 * wire, "issue={issue} wire={wire}");
    }

    #[test]
    fn gpufs_matches_measured_peak() {
        let cpu = CpuStackModel::epyc_host();
        let t = cpu.gpufs_miss_time_s(823_000);
        assert!((t - 1.0).abs() < 1e-6);
    }

    #[test]
    fn staging_and_launch_costs_scale() {
        let cpu = CpuStackModel::epyc_host();
        assert!(cpu.staging_time_s(1 << 30) > cpu.staging_time_s(1 << 20));
        assert_eq!(cpu.launch_sync_time_s(0), 0.0);
    }
}
