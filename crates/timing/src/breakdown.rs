//! The Compute / Cache-API / Storage-I/O execution-time decomposition.
//!
//! Figures 7 and 8 of the paper present end-to-end time as three stacked
//! components obtained by subtraction: pure compute (all data resident in
//! HBM), cache-API overhead (all data resident but accessed through the BaM
//! cache), and the exposed storage-I/O time (everything else). BaM overlaps
//! storage latency with compute from other threads, so the exposed storage
//! time is what remains after that overlap.

use serde::{Deserialize, Serialize};

/// An execution time decomposed the way the paper's Figure 7 reports it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ExecutionBreakdown {
    /// Seconds of pure GPU compute (dataset resident in HBM, no cache).
    pub compute_s: f64,
    /// Additional seconds introduced by going through the software cache
    /// (probes, atomics, coalescing) with no storage I/O.
    pub cache_api_s: f64,
    /// Exposed storage I/O seconds (after overlap with compute).
    pub storage_io_s: f64,
}

impl ExecutionBreakdown {
    /// Builds a breakdown for a BaM-style execution in which storage I/O
    /// overlaps with compute: the end-to-end time is
    /// `max(compute + cache_api, storage_total)` and the exposed storage
    /// component is whatever exceeds the GPU-side time.
    pub fn overlapped(compute_s: f64, cache_api_s: f64, storage_total_s: f64) -> Self {
        let gpu_side = compute_s + cache_api_s;
        let storage_io_s = (storage_total_s - gpu_side).max(0.0);
        Self {
            compute_s,
            cache_api_s,
            storage_io_s,
        }
    }

    /// Builds a breakdown for a serial execution in which the phases do not
    /// overlap (e.g. load-then-compute baselines). `storage_total_s` is fully
    /// exposed.
    pub fn serial(compute_s: f64, cache_api_s: f64, storage_total_s: f64) -> Self {
        Self {
            compute_s,
            cache_api_s,
            storage_io_s: storage_total_s,
        }
    }

    /// End-to-end seconds.
    pub fn total_s(&self) -> f64 {
        self.compute_s + self.cache_api_s + self.storage_io_s
    }

    /// Fraction of the total spent in the cache API (the 2–45 % figure quoted
    /// in §5.2).
    pub fn cache_overhead_fraction(&self) -> f64 {
        if self.total_s() == 0.0 {
            0.0
        } else {
            self.cache_api_s / self.total_s()
        }
    }

    /// Speedup of `self` relative to `other` (>1 means `self` is faster).
    pub fn speedup_vs(&self, other: &ExecutionBreakdown) -> f64 {
        other.total_s() / self.total_s()
    }
}

impl std::fmt::Display for ExecutionBreakdown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "total {:.3}s (compute {:.3}s, cache api {:.3}s, storage i/o {:.3}s)",
            self.total_s(),
            self.compute_s,
            self.cache_api_s,
            self.storage_io_s
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlapped_hides_storage_behind_compute() {
        let b = ExecutionBreakdown::overlapped(2.0, 0.5, 1.0);
        assert_eq!(b.storage_io_s, 0.0);
        assert!((b.total_s() - 2.5).abs() < 1e-12);

        let b2 = ExecutionBreakdown::overlapped(1.0, 0.5, 4.0);
        assert!((b2.storage_io_s - 2.5).abs() < 1e-12);
        assert!((b2.total_s() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn serial_exposes_everything() {
        let b = ExecutionBreakdown::serial(1.0, 0.0, 4.0);
        assert!((b.total_s() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn speedup_and_fraction() {
        let fast = ExecutionBreakdown::overlapped(1.0, 0.2, 0.0);
        let slow = ExecutionBreakdown::serial(1.0, 0.0, 1.4);
        assert!((fast.speedup_vs(&slow) - 2.0).abs() < 1e-12);
        assert!(fast.cache_overhead_fraction() > 0.1);
        assert_eq!(ExecutionBreakdown::default().cache_overhead_fraction(), 0.0);
    }

    #[test]
    fn display_mentions_all_components() {
        let b = ExecutionBreakdown::overlapped(1.0, 0.5, 3.0);
        let s = b.to_string();
        assert!(s.contains("compute") && s.contains("cache api") && s.contains("storage"));
    }
}
