//! # bam-timing — analytical performance models
//!
//! The reproduction separates *function* from *time*: workloads execute
//! functionally on the simulated GPU/NVMe substrates (real cache state, real
//! queue protocol, real data movement), and the elapsed time the paper would
//! have measured is computed analytically from the counts observed during
//! that execution. This crate holds those analytical models:
//!
//! * [`littles`] — Little's-law helpers (§2.2 of the paper).
//! * [`ssd`] — achievable IOPS/bandwidth of an SSD array given parallelism,
//!   access size, queue-pair count, and PCIe ceilings.
//! * [`gpu`] — GPU-side service rates (cache probe cost, hot-cache delivery
//!   bandwidth).
//! * [`cpu`] — CPU software-stack rates used by the CPU-centric baselines
//!   (page-fault handler throughput, per-I/O syscall overhead, kernel-launch
//!   and synchronization costs).
//! * [`breakdown`] — the Compute / Cache-API / Storage-I/O decomposition used
//!   in Figures 7 and 8.
//! * [`cost`] — the $/GB cost model behind Table 2 and the 21.7× headline.
//!
//! All model constants that do not come straight from Table 2 are documented
//! where they are defined, with the paper measurement they are calibrated to.

pub mod breakdown;
pub mod cost;
pub mod cpu;
pub mod gpu;
pub mod littles;
pub mod ssd;

pub use breakdown::ExecutionBreakdown;
pub use cost::CostModel;
pub use cpu::CpuStackModel;
pub use gpu::GpuRateModel;
pub use littles::{achievable_throughput, required_queue_depth, steady_state_in_flight};
pub use ssd::SsdArrayModel;
