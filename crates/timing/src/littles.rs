//! Little's-law helpers (paper §2.2).
//!
//! The paper sizes its queues with `T × L = Q_d`: to sustain throughput `T`
//! against average latency `L`, at least `Q_d` requests must be in flight.

/// Queue depth required to sustain `throughput_per_s` operations per second
/// against a mean latency of `latency_us` microseconds.
///
/// # Examples
///
/// The paper's worked example: 51 M 512-B accesses/s against Optane's 11 µs
/// latency needs ≈561 outstanding requests; against the 980pro's 324 µs it
/// needs ≈16,524.
///
/// ```
/// use bam_timing::required_queue_depth;
/// let optane = required_queue_depth(51.0e6, 11.0);
/// let nand = required_queue_depth(51.0e6, 324.0);
/// assert_eq!(optane, 561);
/// assert_eq!(nand, 16524);
/// ```
pub fn required_queue_depth(throughput_per_s: f64, latency_us: f64) -> u64 {
    steady_state_in_flight(throughput_per_s, latency_us).round() as u64
}

/// The unrounded `T × L` product: the mean number of requests in flight in
/// any system sustaining `throughput_per_s` against `latency_us`.
///
/// This is the quantity the event-driven engine (`bam-sim`) must reproduce as
/// its measured steady-state depth — the reproduction's analytic/simulated
/// cross-check.
pub fn steady_state_in_flight(throughput_per_s: f64, latency_us: f64) -> f64 {
    throughput_per_s * latency_us * 1e-6
}

/// Throughput achievable with `in_flight` concurrently outstanding requests
/// against a mean latency of `latency_us`, capped at `peak_per_s`.
///
/// This is the inverse reading of Little's law used throughout the timing
/// models: when an experiment runs too few GPU threads to cover the
/// bandwidth-latency product, throughput degrades proportionally (the left
/// side of each curve in Figure 4).
pub fn achievable_throughput(in_flight: f64, latency_us: f64, peak_per_s: f64) -> f64 {
    if latency_us <= 0.0 {
        return peak_per_s;
    }
    (in_flight / (latency_us * 1e-6)).min(peak_per_s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_worked_examples() {
        assert_eq!(required_queue_depth(51e6, 11.0), 561);
        assert_eq!(required_queue_depth(6.35e6, 11.0), 70);
        assert_eq!(required_queue_depth(51e6, 324.0), 16524);
        assert_eq!(required_queue_depth(6.35e6, 324.0), 2057);
    }

    #[test]
    fn achievable_throughput_saturates_at_peak() {
        let peak = 5.1e6;
        assert_eq!(achievable_throughput(1e9, 11.0, peak), peak);
        // 56 requests in flight over 11us ≈ 5.1M/s — right at the knee.
        let knee = achievable_throughput(56.0, 11.0, peak);
        assert!((knee / peak - 1.0).abs() < 0.01);
        // Far below the knee, throughput is proportional to parallelism.
        let half = achievable_throughput(28.0, 11.0, peak);
        assert!((half / (knee / 2.0) - 1.0).abs() < 0.02);
    }

    #[test]
    fn zero_latency_means_peak() {
        assert_eq!(achievable_throughput(1.0, 0.0, 123.0), 123.0);
    }

    #[test]
    fn required_depth_is_the_rounded_steady_state() {
        let exact = steady_state_in_flight(51e6, 11.0);
        assert!((exact - 561.0).abs() < 0.001);
        assert_eq!(required_queue_depth(51e6, 11.0), exact.round() as u64);
    }
}
