#!/usr/bin/env bash
# determinism-diff.sh — run a bam-bench binary twice and fail on any drift.
#
# The repository's determinism contract says every harness binary is a pure
# function of its arguments: stdout (and any file it writes) must be
# byte-identical across runs. CI used to copy-paste the same
# run-twice-and-diff block for each binary; this helper is that block.
#
#   scripts/determinism-diff.sh <bin> [--keep FILE] [--out FILE] [-- ARGS...]
#
#   <bin>        binary name under `cargo run --release -p bam-bench --bin`
#   --keep FILE  save the first run's stdout to FILE (for cross-run diffs,
#                e.g. workers=1 vs workers=4, done by the caller)
#   --out FILE   the binary writes FILE (a BENCH_*.json or an --*-out path);
#                snapshot it between runs and require byte-identity too
#   -- ARGS...   arguments passed through to the binary on both runs
#
# Exits non-zero if either diff fails (diff prints the divergence).
set -euo pipefail

usage() {
  echo "usage: $0 <bin> [--keep FILE] [--out FILE] [-- ARGS...]" >&2
  exit 2
}

[ $# -ge 1 ] || usage
bin=$1
shift
keep=""
out=""
while [ $# -gt 0 ]; do
  case $1 in
    --keep)
      keep=${2:?--keep needs a path}
      shift 2
      ;;
    --out)
      out=${2:?--out needs a path}
      shift 2
      ;;
    --)
      shift
      break
      ;;
    *)
      usage
      ;;
  esac
done

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "determinism-diff: $bin${out:+ (tracking $out)} -- $*"
cargo run --release -p bam-bench --bin "$bin" -- "$@" | tee "$tmp/first.out"
if [ -n "$out" ]; then
  cp "$out" "$tmp/first.file"
fi
cargo run --release -p bam-bench --bin "$bin" -- "$@" >"$tmp/second.out"

diff "$tmp/first.out" "$tmp/second.out" || {
  echo "determinism-diff: $bin stdout differs between runs" >&2
  exit 1
}
if [ -n "$out" ]; then
  diff "$tmp/first.file" "$out" || {
    echo "determinism-diff: $bin output file $out differs between runs" >&2
    exit 1
  }
fi
if [ -n "$keep" ]; then
  cp "$tmp/first.out" "$keep"
fi
echo "determinism-diff: $bin OK"
