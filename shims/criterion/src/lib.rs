//! Offline shim for the `criterion` bench harness.
//!
//! Implements the subset of the criterion 0.5 API the bench crate uses —
//! groups, `bench_function`, `bench_with_input`, `BenchmarkId`, the
//! `criterion_group!`/`criterion_main!` macros — with a deliberately simple
//! measurement loop: each benchmark closure is warmed once and then timed for
//! `sample_size` iterations, reporting the mean wall-clock time per
//! iteration. No statistical analysis, HTML reports, or CLI flags; the point
//! is that `cargo bench` runs every registered benchmark end to end and
//! prints comparable numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifies one parameterized benchmark, e.g. `threads/4`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    /// Mean nanoseconds per iteration, recorded by `iter`.
    mean_nanos: f64,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // One untimed warm-up run (cache fills, lazy init).
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.mean_nanos = start.elapsed().as_nanos() as f64 / self.samples.max(1) as f64;
    }
}

fn report(group: &str, id: &str, mean_nanos: f64) {
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    if mean_nanos >= 1.0e6 {
        println!("bench {label:<60} {:>12.3} ms/iter", mean_nanos / 1.0e6);
    } else if mean_nanos >= 1.0e3 {
        println!("bench {label:<60} {:>12.3} us/iter", mean_nanos / 1.0e3);
    } else {
        println!("bench {label:<60} {:>12.1} ns/iter", mean_nanos);
    }
}

/// A named collection of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the shim's fixed-count loop ignores it.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim's fixed-count loop ignores it.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    fn run(&mut self, id: &str, routine: impl FnOnce(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: self.sample_size,
            mean_nanos: 0.0,
        };
        routine(&mut bencher);
        report(&self.name, id, bencher.mean_nanos);
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkIdOrStr>,
        routine: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let id = id.into().0;
        self.run(&id, routine);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        routine: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        let id = id.id.clone();
        self.run(&id, |b| routine(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Either a `&str` name or a full `BenchmarkId`, accepted by `bench_function`.
pub struct BenchmarkIdOrStr(String);

impl From<&str> for BenchmarkIdOrStr {
    fn from(s: &str) -> Self {
        Self(s.to_string())
    }
}

impl From<String> for BenchmarkIdOrStr {
    fn from(s: String) -> Self {
        Self(s)
    }
}

impl From<BenchmarkId> for BenchmarkIdOrStr {
    fn from(id: BenchmarkId) -> Self {
        Self(id.id)
    }
}

pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Top-level harness state.
#[derive(Default)]
pub struct Criterion {
    default_sample_size: Option<usize>,
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size.unwrap_or(10);
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            _criterion: self,
        }
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkIdOrStr>,
        routine: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let id = id.into().0;
        let mut group = self.benchmark_group("");
        group.run(&id, routine);
        self
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        self.default_sample_size = Some(n.max(1));
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags; this shim takes none.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_times_and_chains() {
        let mut c = Criterion::default();
        let mut calls = 0u32;
        {
            let mut g = c.benchmark_group("shim");
            g.sample_size(3).warm_up_time(Duration::from_millis(1));
            g.bench_function("count_calls", |b| b.iter(|| calls += 1));
            g.finish();
        }
        // 1 warm-up + 3 samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(2);
        g.bench_with_input(BenchmarkId::new("double", 21), &21u64, |b, &x| {
            b.iter(|| assert_eq!(x * 2, 42))
        });
        g.finish();
    }
}
