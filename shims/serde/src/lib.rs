//! Offline shim for `serde`.
//!
//! The BaM workspace derives `Serialize`/`Deserialize` on its config and
//! result structs so downstream tooling *could* persist them, but nothing in
//! the repo actually serializes today and the build container has no
//! crates.io access. This shim keeps the annotations compiling: the traits
//! are empty markers and the derives (re-exported from the companion
//! `serde_derive` proc-macro crate) emit empty impls. Swapping in real serde
//! later is a one-line Cargo change; no source edits required.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
