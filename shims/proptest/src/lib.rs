//! Offline shim for `proptest`.
//!
//! Supports the subset the BaM property suite uses: the `proptest!` macro
//! with an optional `#![proptest_config(..)]` header, `any::<T>()`, integer
//! ranges, tuples of strategies, `prop::collection::vec`, and the
//! `prop_assert*` macros. Each test runs `cases` iterations with inputs drawn
//! from a deterministic per-test RNG (seeded from the test name), so failures
//! reproduce across runs. Unlike real proptest there is no shrinking: a
//! failing case panics with the sampled values left in the assert message.

use std::ops::Range;

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Deterministic generator driving all sampling, over the shim `rand`
/// crate's SplitMix64 core (real proptest builds on `rand` the same way).
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        Self {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Seed a test's RNG from its name so every test draws an independent,
    /// stable sequence.
    pub fn for_test(name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        for byte in name.bytes() {
            seed ^= byte as u64;
            seed = seed.wrapping_mul(0x100_0000_01b3);
        }
        Self::new(seed)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// Run-count configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
    /// Accepted for compatibility with real proptest configs; the shim does
    /// not shrink, so this is never consulted.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 256,
            max_shrink_iters: 1024,
        }
    }
}

/// A source of random values of one type.
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy produced by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_strategy_for_range {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $ty
            }
        }
    )*};
}

impl_strategy_for_range!(u8, u16, u32, u64, usize);

macro_rules! impl_strategy_for_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

impl_strategy_for_tuple!(A: 0, B: 1);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3);

/// Length specification for [`collection::vec`]: an exact `usize` or a
/// half-open `Range<usize>`.
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        Self {
            min: exact,
            max_exclusive: exact + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty vec-length range");
        Self {
            min: range.start,
            max_exclusive: range.end,
        }
    }
}

pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.len.max_exclusive - self.len.min) as u64;
            let len = self.len.min + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Namespace mirror so `prop::collection::vec(..)` resolves.
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

/// No-shrinking stand-ins: assert directly, so a failing case panics with the
/// offending values in the message.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// The test-defining macro. Each contained `fn name(arg in strategy, ..)`
/// becomes a `#[test]` that samples its arguments `config.cases` times.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_tests! { ($config) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($config:expr) ) => {};
    (
        ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::for_test(stringify!($name));
            for __case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_tests! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_respect_bounds(x in 10u32..20, y in 0u64..3, flag in any::<bool>()) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(y < 3);
            prop_assert!(u8::from(flag) <= 1);
        }

        #[test]
        fn vec_lengths_respect_spec(
            fixed in prop::collection::vec(0u8..255, 7usize),
            ranged in prop::collection::vec((0u32..4, any::<u16>()), 1..5),
        ) {
            prop_assert_eq!(fixed.len(), 7);
            prop_assert!((1..5).contains(&ranged.len()));
        }
    }

    #[test]
    fn per_test_rng_is_deterministic() {
        let mut a = TestRng::for_test("t");
        let mut b = TestRng::for_test("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
