//! Offline shim for the `rand` crate (0.8-style API).
//!
//! Implements exactly the surface the workloads use — `StdRng`,
//! `SeedableRng::seed_from_u64`, and the `Rng` extension methods `gen`,
//! `gen_range`, and `gen_bool` — over a SplitMix64 core. Deterministic for a
//! given seed, which is all the workload generators require; it makes no
//! cryptographic or statistical-suite claims.

use std::ops::Range;

/// Core RNG interface: a source of uniformly distributed `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from integer seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014): full-period, passes BigCrush.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Types producible by `Rng::gen` (the `Standard` distribution).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($ty:ty),*) => {$(
        impl Standard for $ty {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges accepted by `Rng::gen_range`.
pub trait SampleRange {
    type Output;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_int {
    ($($ty:ty),*) => {$(
        impl SampleRange for Range<$ty> {
            type Output = $ty;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range called with empty range");
                let span = (self.end - self.start) as u64;
                // Modulo bias is negligible for simulation-scale spans.
                self.start + (rng.next_u64() % span) as $ty
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_float {
    ($($ty:ty),*) => {$(
        impl SampleRange for Range<$ty> {
            type Output = $ty;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range called with empty range");
                let unit = <$ty as Standard>::sample_standard(rng);
                // `unit` < 1, but start + unit * span can still round up to
                // `end`; clamp to preserve the half-open contract.
                let v = self.start + unit * (self.end - self.start);
                if v >= self.end { self.end.next_down() } else { v }
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);

/// The user-facing extension trait, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(0.5f64..2.5);
            assert!((0.5..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
