//! Offline shim for the `parking_lot` crate.
//!
//! The container has no crates.io access, so the workspace ships this drop-in
//! replacement implemented over `std::sync`. It exposes the subset of the
//! `parking_lot` API the BaM crates use: `Mutex`/`RwLock` whose guards are
//! returned directly (no `LockResult`), with poisoning transparently cleared —
//! matching `parking_lot`'s no-poisoning semantics closely enough for the
//! simulator, where a panicked holder's partial state is never re-read.

use std::sync::{self, LockResult};

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

fn ignore_poison<G>(result: LockResult<G>) -> G {
    result.unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        ignore_poison(self.0.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        ignore_poison(self.0.lock())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        ignore_poison(self.0.get_mut())
    }
}

/// A reader-writer lock whose `read()`/`write()` return guards directly.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        ignore_poison(self.0.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        ignore_poison(self.0.read())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        ignore_poison(self.0.write())
    }

    pub fn get_mut(&mut self) -> &mut T {
        ignore_poison(self.0.get_mut())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_concurrent_readers() {
        let l = Arc::new(RwLock::new(7u64));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let l = l.clone();
                std::thread::spawn(move || *l.read())
            })
            .collect();
        for r in readers {
            assert_eq!(r.join().unwrap(), 7);
        }
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(1));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        // parking_lot semantics: a panicked holder does not poison the lock.
        assert_eq!(*m.lock(), 1);
    }
}
