//! Offline shim for `serde_derive`.
//!
//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` here emit *empty* impls
//! of the marker traits in the shim `serde` crate. The parser is intentionally
//! small (no `syn`/`quote` available offline): it scans the item's tokens for
//! the `struct`/`enum` keyword and takes the following identifier as the type
//! name. Generic types are rejected with a compile error rather than
//! mis-expanded; none of the workspace's serialized types are generic.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Extract the type name a `derive` input declares, skipping outer attributes
/// (`#[...]`, including doc comments) and visibility qualifiers.
fn type_name(input: TokenStream) -> Result<String, String> {
    let mut tokens = input.into_iter().peekable();
    while let Some(tree) = tokens.next() {
        match tree {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Swallow the attribute's bracket group.
                match tokens.peek() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                        tokens.next();
                    }
                    _ => return Err("malformed attribute in derive input".into()),
                }
            }
            TokenTree::Ident(ident) => {
                let word = ident.to_string();
                if word == "struct" || word == "enum" || word == "union" {
                    let name = match tokens.next() {
                        Some(TokenTree::Ident(name)) => name.to_string(),
                        _ => return Err(format!("expected a name after `{word}`")),
                    };
                    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
                        return Err(format!(
                            "serde shim cannot derive for generic type `{name}`; \
                             write the impl by hand"
                        ));
                    }
                    return Ok(name);
                }
                // `pub`, `pub(crate)` (the parenthesized part arrives as a
                // Group and is skipped by the catch-all arm), etc.
            }
            _ => {}
        }
    }
    Err("no struct/enum/union found in derive input".into())
}

fn marker_impl(input: TokenStream, template: fn(&str) -> String) -> TokenStream {
    match type_name(input) {
        Ok(name) => template(&name).parse().expect("shim emitted invalid Rust"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, |name| {
        format!("impl serde::Serialize for {name} {{}}")
    })
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, |name| {
        format!("impl<'de> serde::Deserialize<'de> for {name} {{}}")
    })
}
