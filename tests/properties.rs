//! Property-based tests of the core invariants, using proptest.
//!
//! The properties mirror the guarantees the paper's design relies on:
//! the queue protocol never loses or corrupts a command under concurrency,
//! the cache is always coherent with its backing store, and the workload
//! kernels agree with their host references on arbitrary inputs.

use proptest::prelude::*;
use std::sync::Arc;

use bam::core::BamQueuePair;
use bam::core::{BamConfig, BamSystem};
use bam::gpu::warp::{ballot, groups, match_any, WARP_SIZE};
use bam::gpu::{GpuExecutor, GpuSpec};
use bam::mem::{BumpAllocator, ByteRegion};
use bam::nvme::{NvmeCommand, NvmeCompletion, SsdDevice, SsdSpec};
use bam::workloads::graph::{bfs_bam, bfs_reference, upload_edge_list, CsrGraph};

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    /// NVMe command encode/decode is lossless for every field combination.
    #[test]
    fn nvme_command_roundtrip(cid in any::<u16>(), slba in any::<u64>(), nlb in 1u32..1024, dptr in any::<u64>()) {
        let cmd = NvmeCommand::read(cid, slba, nlb, dptr);
        prop_assert_eq!(NvmeCommand::decode(&cmd.encode()), Some(cmd));
        let w = NvmeCommand::write(cid, slba, nlb, dptr);
        prop_assert_eq!(NvmeCommand::decode(&w.encode()), Some(w));
    }

    /// Completion entries round-trip including the phase bit.
    #[test]
    fn nvme_completion_roundtrip(cid in any::<u16>(), sq_head in any::<u16>(), phase in any::<bool>()) {
        let c = NvmeCompletion { cid, status: bam::nvme::NvmeStatus::Success, sq_head, phase };
        prop_assert_eq!(NvmeCompletion::decode(&c.encode()), c);
    }

    /// match_any partitions the active lanes into disjoint groups that
    /// exactly cover them, and every group's lanes share a key.
    #[test]
    fn warp_match_any_partitions(keys in prop::collection::vec(0u64..8, WARP_SIZE), active in any::<u32>()) {
        let masks = match_any(&keys, active);
        let gs = groups(&masks, active);
        let mut covered: u32 = 0;
        for (leader, mask) in &gs {
            prop_assert_eq!(covered & mask, 0, "groups must be disjoint");
            covered |= mask;
            for lane in 0..WARP_SIZE {
                if mask & (1 << lane) != 0 {
                    prop_assert_eq!(keys[lane], keys[*leader]);
                    prop_assert!(active & (1 << lane) != 0);
                }
            }
        }
        prop_assert_eq!(covered, active, "groups must cover all active lanes");
        // ballot of all-true equals the active mask.
        prop_assert_eq!(ballot(&[true; WARP_SIZE], active), active);
    }

    /// CSR construction preserves every edge and the degree sum.
    #[test]
    fn csr_preserves_edges(edges in prop::collection::vec((0u32..64, 0u32..64), 1..200)) {
        let g = CsrGraph::from_edge_list(64, &edges, false);
        prop_assert_eq!(g.num_edges(), edges.len() as u64);
        let degree_sum: u64 = (0..64).map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, edges.len() as u64);
        for (u, v) in &edges {
            prop_assert!(g.neighbors(*u).contains(v), "edge ({u},{v}) lost");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, .. ProptestConfig::default() })]

    /// Data written through BamArray and read back (with arbitrary interleaved
    /// reads) always matches a host-side model of the array.
    #[test]
    fn bam_array_matches_host_model(ops in prop::collection::vec((0u64..2_000, any::<u32>(), any::<bool>()), 1..80)) {
        let system = BamSystem::new(BamConfig::test_scale()).unwrap();
        let arr = system.create_array::<u32>(2_000).unwrap();
        let mut model = vec![0u32; 2_000];
        arr.preload(&model).unwrap();
        for (idx, value, is_write) in ops {
            if is_write {
                arr.write(idx, value).unwrap();
                model[idx as usize] = value;
            } else {
                prop_assert_eq!(arr.read(idx).unwrap(), model[idx as usize]);
            }
        }
        // After a flush, the media holds exactly the model contents.
        system.flush().unwrap();
        for (idx, expected) in model.iter().enumerate().step_by(111) {
            prop_assert_eq!(arr.read(idx as u64).unwrap(), *expected);
        }
    }

    /// The queue protocol delivers every command exactly once with correct
    /// data, for arbitrary block patterns and thread counts.
    #[test]
    fn queue_protocol_never_loses_commands(
        lbas in prop::collection::vec(0u64..512, 8..64),
        threads in 1usize..6,
    ) {
        let region = Arc::new(ByteRegion::new(8 << 20));
        let alloc = BumpAllocator::new(region.len() as u64);
        let mut ssd = SsdDevice::new(SsdSpec::intel_optane_p5800x(), region.clone(), 4 << 20);
        for lba in 0..512u64 {
            ssd.media().write_blocks(lba, &vec![(lba % 251) as u8; 512]).unwrap();
        }
        let qp = Arc::new(BamQueuePair::new(ssd.create_queue_pair(&alloc, 16).unwrap()));
        ssd.start();
        let per_thread: Vec<Vec<u64>> =
            (0..threads).map(|t| lbas.iter().skip(t).step_by(threads).copied().collect()).collect();
        std::thread::scope(|s| {
            for chunk in &per_thread {
                let qp = qp.clone();
                let region = region.clone();
                let dst = alloc.alloc(512, 512).unwrap();
                s.spawn(move || {
                    for &lba in chunk {
                        qp.read_and_wait(lba, 1, dst).unwrap();
                        let mut out = [0u8; 512];
                        region.read_bytes(dst, &mut out);
                        assert!(out.iter().all(|&b| b == (lba % 251) as u8), "lba {lba} corrupted");
                    }
                });
            }
        });
        prop_assert_eq!(qp.submissions(), lbas.len() as u64);
        prop_assert!(qp.sq_doorbell_writes() <= lbas.len() as u64);
    }

    /// BaM BFS agrees with the host reference on arbitrary random graphs.
    #[test]
    fn bfs_agrees_with_reference(
        num_nodes in 8u32..200,
        extra_edges in prop::collection::vec((0u32..200, 0u32..200), 0..300),
        source_pick in any::<u32>(),
    ) {
        // Keep endpoints in range and add a spanning chain so the graph is connected-ish.
        let mut edges: Vec<(u32, u32)> = (0..num_nodes - 1).map(|i| (i, i + 1)).collect();
        edges.extend(extra_edges.into_iter().map(|(u, v)| (u % num_nodes, v % num_nodes)));
        let graph = CsrGraph::from_edge_list(num_nodes, &edges, true);
        let source = source_pick % num_nodes;
        let system = BamSystem::new(BamConfig::test_scale()).unwrap();
        let bam_edges = upload_edge_list(&system, &graph).unwrap();
        let exec = GpuExecutor::with_workers(GpuSpec::a100_80gb(), 2);
        let got = bfs_bam(&graph.offsets, &bam_edges, source, &exec).unwrap();
        let want = bfs_reference(&graph, source);
        prop_assert_eq!(got.distances, want.distances);
        prop_assert_eq!(got.edges_traversed, want.edges_traversed);
    }
}
