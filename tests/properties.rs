//! Property-based tests of the core invariants, using proptest.
//!
//! The properties mirror the guarantees the paper's design relies on:
//! the queue protocol never loses or corrupts a command under concurrency,
//! the cache is always coherent with its backing store, and the workload
//! kernels agree with their host references on arbitrary inputs.

use proptest::prelude::*;
use std::sync::Arc;

use bam::core::BamQueuePair;
use bam::core::{decode_records, recover, BamError, CacheJournal, JournalRecord, MemoryBacking};
use bam::core::{BamConfig, BamSystem};
use bam::gpu::warp::{ballot, groups, match_any, WARP_SIZE};
use bam::gpu::{GpuExecutor, GpuSpec};
use bam::mem::{BumpAllocator, ByteRegion};
use bam::nvme::{NvmeCommand, NvmeCompletion, SsdDevice, SsdSpec};
use bam::obs::LatencyHisto;
use bam::workloads::graph::{bfs_bam, bfs_reference, upload_edge_list, CsrGraph};

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    /// NVMe command encode/decode is lossless for every field combination.
    #[test]
    fn nvme_command_roundtrip(cid in any::<u16>(), slba in any::<u64>(), nlb in 1u32..1024, dptr in any::<u64>()) {
        let cmd = NvmeCommand::read(cid, slba, nlb, dptr);
        prop_assert_eq!(NvmeCommand::decode(&cmd.encode()), Some(cmd));
        let w = NvmeCommand::write(cid, slba, nlb, dptr);
        prop_assert_eq!(NvmeCommand::decode(&w.encode()), Some(w));
    }

    /// Completion entries round-trip including the phase bit.
    #[test]
    fn nvme_completion_roundtrip(cid in any::<u16>(), sq_head in any::<u16>(), phase in any::<bool>()) {
        let c = NvmeCompletion { cid, status: bam::nvme::NvmeStatus::Success, sq_head, phase };
        prop_assert_eq!(NvmeCompletion::decode(&c.encode()), c);
    }

    /// match_any partitions the active lanes into disjoint groups that
    /// exactly cover them, and every group's lanes share a key.
    #[test]
    fn warp_match_any_partitions(keys in prop::collection::vec(0u64..8, WARP_SIZE), active in any::<u32>()) {
        let masks = match_any(&keys, active);
        let gs = groups(&masks, active);
        let mut covered: u32 = 0;
        for (leader, mask) in &gs {
            prop_assert_eq!(covered & mask, 0, "groups must be disjoint");
            covered |= mask;
            for lane in 0..WARP_SIZE {
                if mask & (1 << lane) != 0 {
                    prop_assert_eq!(keys[lane], keys[*leader]);
                    prop_assert!(active & (1 << lane) != 0);
                }
            }
        }
        prop_assert_eq!(covered, active, "groups must cover all active lanes");
        // ballot of all-true equals the active mask.
        prop_assert_eq!(ballot(&[true; WARP_SIZE], active), active);
    }

    /// CSR construction preserves every edge and the degree sum.
    #[test]
    fn csr_preserves_edges(edges in prop::collection::vec((0u32..64, 0u32..64), 1..200)) {
        let g = CsrGraph::from_edge_list(64, &edges, false);
        prop_assert_eq!(g.num_edges(), edges.len() as u64);
        let degree_sum: u64 = (0..64).map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, edges.len() as u64);
        for (u, v) in &edges {
            prop_assert!(g.neighbors(*u).contains(v), "edge ({u},{v}) lost");
        }
    }

    /// The log-linear histogram's percentiles stay within one bucket width
    /// (~2% relative above the linear range) of the exact nearest-rank
    /// percentile, on arbitrary samples spanning nine decades.
    #[test]
    fn histo_quantiles_match_exact_within_bucket_error(
        samples in prop::collection::vec(0u64..1_000_000_000, 1..500),
        qs in prop::collection::vec(0u64..1001, 1..8),
    ) {
        let histo = LatencyHisto::from_samples(samples.iter().copied());
        prop_assert_eq!(histo.count(), samples.len() as u64);
        prop_assert_eq!(histo.sum_ns(), samples.iter().sum::<u64>());
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for qn in qs {
            let q = qn as f64 / 1000.0;
            // Exact nearest-rank percentile over the sorted samples.
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            let approx = histo.value_at_quantile(q);
            // Bucket width at the exact value: 1 in the linear range, else
            // 1/64 of the value's power-of-two range (~2 values relative).
            let tolerance = (exact / 64).max(1);
            prop_assert!(
                approx.abs_diff(exact) <= tolerance,
                "q={q}: approx {approx} vs exact {exact} (tolerance {tolerance})"
            );
            prop_assert!(approx >= histo.min_ns() && approx <= histo.max_ns());
        }
    }

    /// Merging histograms is exactly recording the concatenated samples.
    #[test]
    fn histo_merge_equals_concatenation(
        a in prop::collection::vec(0u64..1_000_000_000, 0..300),
        b in prop::collection::vec(0u64..1_000_000_000, 0..300),
    ) {
        let mut merged = LatencyHisto::from_samples(a.iter().copied());
        merged.merge(&LatencyHisto::from_samples(b.iter().copied()));
        let concat = LatencyHisto::from_samples(a.iter().chain(&b).copied());
        prop_assert_eq!(merged, concat);
    }
}

/// Line geometry of the journal-property rig: 16 lines of 64 bytes.
const JLINES: u64 = 16;
const JLINE_BYTES: u64 = 64;

/// Replays a sampled op stream into a fresh journal, returning the journal
/// plus the records it must decode to. Kind 0 is a write (offset and length
/// derived from `seed` so `offset + len <= JLINE_BYTES`), kind 1 an intent,
/// kind 2 a commit of the line's newest uncommitted intent (downgraded to an
/// intent when none is open, so untampered journals always recover cleanly).
fn journal_from_ops(ops: &[(u64, u64, u64)]) -> (CacheJournal, Vec<JournalRecord>) {
    let journal = CacheJournal::new();
    let mut expected = Vec::new();
    let mut latest_write: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    let mut open_intents: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    for &(line_sel, seed, kind) in ops {
        let line = line_sel % JLINES;
        match kind {
            0 => {
                let offset = seed % (JLINE_BYTES / 2);
                let len = 1 + (seed >> 8) % (JLINE_BYTES / 2);
                let payload = vec![(seed >> 16) as u8; len as usize];
                let a = journal.append_write(line, offset, &payload).unwrap();
                latest_write.insert(line, a.lsn);
                expected.push(JournalRecord::Write {
                    lsn: a.lsn,
                    line,
                    offset,
                    payload,
                });
            }
            _ if kind == 2 && open_intents.contains_key(&line) => {
                let intent_lsn = open_intents.remove(&line).unwrap();
                let a = journal.append_writeback_commit(line, intent_lsn).unwrap();
                expected.push(JournalRecord::WritebackCommit {
                    lsn: a.lsn,
                    line,
                    intent_lsn,
                });
            }
            _ => {
                let covered = latest_write.get(&line).copied().unwrap_or(0);
                let a = journal.append_writeback_intent(line, covered).unwrap();
                open_intents.insert(line, a.lsn);
                expected.push(JournalRecord::WritebackIntent {
                    lsn: a.lsn,
                    line,
                    covered_lsn: covered,
                });
            }
        }
    }
    (journal, expected)
}

/// An in-memory backing store matching the journal-property rig's geometry.
fn journal_backing() -> (Arc<ByteRegion>, Arc<MemoryBacking>) {
    let data = Arc::new(ByteRegion::new((JLINES * JLINE_BYTES) as usize));
    let gpu = Arc::new(ByteRegion::new(4096));
    let backing = Arc::new(MemoryBacking::new(
        data,
        0,
        gpu.clone(),
        JLINE_BYTES,
        JLINES,
    ));
    (gpu, backing)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    /// Journal encoding round-trips arbitrary append sequences with dense
    /// LSNs and no torn tail.
    #[test]
    fn journal_encoding_roundtrips(ops in prop::collection::vec((any::<u64>(), any::<u64>(), 0u64..3), 1..40)) {
        let (journal, expected) = journal_from_ops(&ops);
        let decoded = decode_records(&journal.snapshot()).unwrap();
        prop_assert!(!decoded.torn_tail);
        prop_assert_eq!(&decoded.records, &expected);
        for (i, rec) in decoded.records.iter().enumerate() {
            prop_assert_eq!(rec.lsn(), i as u64 + 1, "LSNs must be dense from 1");
        }
    }

    /// Cutting the journal anywhere yields the complete-record prefix and a
    /// torn-tail flag — truncation is a crash artifact, never "corruption".
    #[test]
    fn journal_truncation_is_torn_not_corrupt(
        ops in prop::collection::vec((any::<u64>(), any::<u64>(), 0u64..3), 1..24),
        cut_sel in any::<u64>(),
    ) {
        let (journal, expected) = journal_from_ops(&ops);
        let bytes = journal.snapshot();
        let cut = (cut_sel % (bytes.len() as u64 + 1)) as usize;
        let decoded = decode_records(&bytes[..cut]).unwrap();
        prop_assert!(decoded.records.len() <= expected.len());
        prop_assert_eq!(&decoded.records[..], &expected[..decoded.records.len()]);
        // The flag is exact: torn iff the cut kept part of the next record.
        let complete: usize = decoded.records.iter().map(|r| {
            bam::core::journal::RECORD_OVERHEAD_BYTES + match r {
                JournalRecord::Write { payload, .. } => payload.len(),
                _ => 0,
            }
        }).sum();
        prop_assert_eq!(decoded.torn_tail, cut != complete);
    }

    /// Flipping any single byte of a complete journal is detected and
    /// reported as typed corruption naming a plausible LSN.
    #[test]
    fn journal_byte_flips_are_typed_corruption(
        ops in prop::collection::vec((any::<u64>(), any::<u64>(), 0u64..3), 1..24),
        pos_sel in any::<u64>(),
        flip in 1u8..255,
    ) {
        let (journal, expected) = journal_from_ops(&ops);
        let mut bytes = journal.snapshot();
        let pos = (pos_sel % bytes.len() as u64) as usize;
        bytes[pos] ^= flip;
        match decode_records(&bytes) {
            Err(BamError::JournalCorrupt { lsn }) => {
                prop_assert!(lsn >= 1 && lsn <= expected.len() as u64,
                    "flip at {} blamed lsn {}", pos, lsn);
            }
            other => prop_assert!(false, "flip at {} undetected: {:?}", pos, other),
        }
    }

    /// Recovery never panics: untampered journals replay cleanly, and torn,
    /// flipped, or torn-and-flipped journals either replay their valid
    /// prefix or fail with a typed error.
    #[test]
    fn journal_recovery_never_panics(
        ops in prop::collection::vec((any::<u64>(), any::<u64>(), 0u64..3), 1..24),
        cut_sel in any::<u64>(),
        flip_sel in any::<u64>(),
    ) {
        let (journal, _) = journal_from_ops(&ops);
        let bytes = journal.snapshot();
        let (gpu, backing) = journal_backing();
        prop_assert!(recover(&bytes, backing.as_ref(), &gpu, 1024).is_ok());

        // Torn-only journals still recover: the complete prefix replays.
        let cut = (cut_sel % (bytes.len() as u64 + 1)) as usize;
        let torn = &bytes[..cut];
        prop_assert!(recover(torn, backing.as_ref(), &gpu, 1024).is_ok());

        // Arbitrary further damage must at worst produce a typed error.
        let mut damaged = torn.to_vec();
        if !damaged.is_empty() {
            let pos = (flip_sel % damaged.len() as u64) as usize;
            damaged[pos] ^= 1 + (flip_sel >> 32) as u8 % 255;
        }
        match recover(&damaged, backing.as_ref(), &gpu, 1024) {
            Ok(_) | Err(BamError::JournalCorrupt { .. }) => {}
            Err(other) => prop_assert!(false, "unexpected recovery error {:?}", other),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, .. ProptestConfig::default() })]

    /// Data written through BamArray and read back (with arbitrary interleaved
    /// reads) always matches a host-side model of the array.
    #[test]
    fn bam_array_matches_host_model(ops in prop::collection::vec((0u64..2_000, any::<u32>(), any::<bool>()), 1..80)) {
        let system = BamSystem::new(BamConfig::test_scale()).unwrap();
        let arr = system.create_array::<u32>(2_000).unwrap();
        let mut model = vec![0u32; 2_000];
        arr.preload(&model).unwrap();
        for (idx, value, is_write) in ops {
            if is_write {
                arr.write(idx, value).unwrap();
                model[idx as usize] = value;
            } else {
                prop_assert_eq!(arr.read(idx).unwrap(), model[idx as usize]);
            }
        }
        // After a flush, the media holds exactly the model contents.
        system.flush().unwrap();
        for (idx, expected) in model.iter().enumerate().step_by(111) {
            prop_assert_eq!(arr.read(idx as u64).unwrap(), *expected);
        }
    }

    /// The queue protocol delivers every command exactly once with correct
    /// data, for arbitrary block patterns and thread counts.
    #[test]
    fn queue_protocol_never_loses_commands(
        lbas in prop::collection::vec(0u64..512, 8..64),
        threads in 1usize..6,
    ) {
        let region = Arc::new(ByteRegion::new(8 << 20));
        let alloc = BumpAllocator::new(region.len() as u64);
        let mut ssd = SsdDevice::new(SsdSpec::intel_optane_p5800x(), region.clone(), 4 << 20);
        for lba in 0..512u64 {
            ssd.media().write_blocks(lba, &vec![(lba % 251) as u8; 512]).unwrap();
        }
        let qp = Arc::new(BamQueuePair::new(ssd.create_queue_pair(&alloc, 16).unwrap()));
        ssd.start();
        let per_thread: Vec<Vec<u64>> =
            (0..threads).map(|t| lbas.iter().skip(t).step_by(threads).copied().collect()).collect();
        std::thread::scope(|s| {
            for chunk in &per_thread {
                let qp = qp.clone();
                let region = region.clone();
                let dst = alloc.alloc(512, 512).unwrap();
                s.spawn(move || {
                    for &lba in chunk {
                        qp.read_and_wait(lba, 1, dst).unwrap();
                        let mut out = [0u8; 512];
                        region.read_bytes(dst, &mut out);
                        assert!(out.iter().all(|&b| b == (lba % 251) as u8), "lba {lba} corrupted");
                    }
                });
            }
        });
        prop_assert_eq!(qp.submissions(), lbas.len() as u64);
        prop_assert!(qp.sq_doorbell_writes() <= lbas.len() as u64);
    }

    /// BaM BFS agrees with the host reference on arbitrary random graphs.
    #[test]
    fn bfs_agrees_with_reference(
        num_nodes in 8u32..200,
        extra_edges in prop::collection::vec((0u32..200, 0u32..200), 0..300),
        source_pick in any::<u32>(),
    ) {
        // Keep endpoints in range and add a spanning chain so the graph is connected-ish.
        let mut edges: Vec<(u32, u32)> = (0..num_nodes - 1).map(|i| (i, i + 1)).collect();
        edges.extend(extra_edges.into_iter().map(|(u, v)| (u % num_nodes, v % num_nodes)));
        let graph = CsrGraph::from_edge_list(num_nodes, &edges, true);
        let source = source_pick % num_nodes;
        let system = BamSystem::new(BamConfig::test_scale()).unwrap();
        let bam_edges = upload_edge_list(&system, &graph).unwrap();
        let exec = GpuExecutor::with_workers(GpuSpec::a100_80gb(), 2);
        let got = bfs_bam(&graph.offsets, &bam_edges, source, &exec).unwrap();
        let want = bfs_reference(&graph, source);
        prop_assert_eq!(got.distances, want.distances);
        prop_assert_eq!(got.edges_traversed, want.edges_traversed);
    }
}
