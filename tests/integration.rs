//! Cross-crate integration tests: full BaM stack (GPU executor + cache +
//! queues + simulated SSDs) driven through the facade crate, validated
//! against host references.

use bam::core::{BamConfig, BamSystem};
use bam::gpu::{GpuExecutor, GpuSpec, WARP_SIZE};
use bam::nvme::{DataLayout, SsdSpec};
use bam::workloads::analytics::{query_bam, query_reference, BamTaxiTable, TaxiTable};
use bam::workloads::graph::{
    bfs_bam, bfs_reference, cc_bam, cc_reference, rmat, upload_edge_list, RmatParams,
};
use bam::workloads::vectoradd::{setup as vectoradd_setup, vectoradd_bam};

fn executor() -> GpuExecutor {
    GpuExecutor::with_workers(GpuSpec::a100_80gb(), 4)
}

#[test]
fn bfs_and_cc_on_skewed_graph_match_references() {
    let graph = rmat(11, 12_000, RmatParams::gap_kron(), 99);
    let system = BamSystem::new(BamConfig::test_scale()).unwrap();
    let edges = upload_edge_list(&system, &graph).unwrap();
    let exec = executor();
    let source = graph.nodes_with_degree_at_least(3)[0];

    let bfs = bfs_bam(&graph.offsets, &edges, source, &exec).unwrap();
    assert_eq!(bfs.distances, bfs_reference(&graph, source).distances);

    let cc = cc_bam(&graph.offsets, &edges, &exec).unwrap();
    let reference = cc_reference(&graph);
    assert_eq!(cc.labels, reference.labels);
    assert_eq!(cc.num_components(), reference.num_components());

    // The traversal really went through the storage stack.
    let commands: u64 = system.ssd_stats().iter().map(|s| s.total_commands()).sum();
    assert!(commands > 0);
    assert!(system.metrics().cache_misses > 0);
}

#[test]
fn analytics_queries_match_reference_and_keep_amplification_low() {
    let table = TaxiTable::generate(30_000, 0.01, 5);
    let mut config = BamConfig::test_scale();
    config.ssd_capacity_bytes = 32 << 20;
    let system = BamSystem::new(config).unwrap();
    let bam_table = BamTaxiTable::upload(&system, &table).unwrap();
    let exec = executor();
    for q in 0..=5usize {
        system.reset_metrics();
        let got = query_bam(&bam_table, q, &exec).unwrap();
        let want = query_reference(&table, q);
        assert_eq!(got.selected_rows, want.selected_rows, "Q{q}");
        assert!((got.aggregate - want.aggregate).abs() < 1e-6 * want.aggregate.abs().max(1.0));
        // On-demand access keeps amplification bounded even at 512 B lines.
        assert!(
            system.metrics().io_amplification() < 16.0,
            "Q{q} amplification"
        );
    }
}

#[test]
fn vectoradd_results_are_durable_on_storage() {
    let system = BamSystem::new(BamConfig::test_scale()).unwrap();
    let (a, b, out) = vectoradd_setup(&system, 30_000).unwrap();
    let exec = executor();
    vectoradd_bam(&system, &a, &b, &out, &exec).unwrap();
    // Rebuild a fresh view over the same array and verify a sample straight
    // from the media (data must have been flushed).
    for idx in [0u64, 1234, 29_999] {
        assert_eq!(out.read(idx).unwrap(), 3.0 * idx as f64);
    }
    assert!(system.metrics().write_requests > 0);
}

#[test]
fn striped_layout_roundtrips_through_the_full_stack() {
    let mut config = BamConfig::test_scale();
    config.layout = DataLayout::Striped { chunk_blocks: 1 };
    config.num_ssds = 3;
    let system = BamSystem::new(config).unwrap();
    let arr = system.create_array::<u64>(20_000).unwrap();
    arr.preload(&(0..20_000u64).map(|i| i * 11).collect::<Vec<_>>())
        .unwrap();
    let exec = executor();
    let errors = std::sync::atomic::AtomicUsize::new(0);
    exec.launch(20_000, |warp| {
        let mut indices = [None; WARP_SIZE];
        for (lane, tid) in warp.lanes() {
            indices[lane] = Some(tid as u64);
        }
        match arr.gather_warp(warp, &indices) {
            Ok(vals) => {
                for (lane, tid) in warp.lanes() {
                    if vals[lane] != Some(tid as u64 * 11) {
                        errors.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                }
            }
            Err(_) => {
                errors.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
        }
    });
    assert_eq!(errors.load(std::sync::atomic::Ordering::Relaxed), 0);
    // Striping spreads reads across all three devices.
    let stats = system.ssd_stats();
    assert!(
        stats.iter().all(|s| s.read_commands > 0),
        "all devices must serve reads: {stats:?}"
    );
}

#[test]
fn uncached_and_cached_systems_agree_on_data() {
    let cached = BamSystem::new(BamConfig::test_scale()).unwrap();
    let mut uncached_cfg = BamConfig::test_scale();
    uncached_cfg.use_cache = false;
    let uncached = BamSystem::new(uncached_cfg).unwrap();
    let values: Vec<u32> = (0..5_000u32)
        .map(|i| i.wrapping_mul(2_654_435_761))
        .collect();
    let a1 = cached.create_array::<u32>(5_000).unwrap();
    let a2 = uncached.create_array::<u32>(5_000).unwrap();
    a1.preload(&values).unwrap();
    a2.preload(&values).unwrap();
    for idx in (0..5_000u64).step_by(97) {
        assert_eq!(a1.read(idx).unwrap(), a2.read(idx).unwrap());
    }
    assert_eq!(uncached.metrics().cache_hits, 0);
    assert!(cached.metrics().cache_hits > 0);
}

#[test]
fn consumer_ssd_spec_functionally_identical_to_optane() {
    // The spec changes the analytic envelope, never the functional result.
    let mut cfg = BamConfig::test_scale();
    cfg.ssd_spec = SsdSpec::samsung_980pro();
    let system = BamSystem::new(cfg).unwrap();
    let arr = system.create_array::<u64>(4_096).unwrap();
    arr.preload(&(0..4_096u64).collect::<Vec<_>>()).unwrap();
    for idx in [0u64, 2_048, 4_095] {
        assert_eq!(arr.read(idx).unwrap(), idx);
    }
}
