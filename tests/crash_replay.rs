//! Crash-replay sweeps: kill the stack at randomly and exhaustively chosen
//! durable steps, replay the journal, and assert the three recovery
//! invariants — no acknowledged write is lost, no committed write-back is
//! double-applied, and the replay is bit-identical when run twice.
//!
//! The discipline follows Memento (see SNIPPETS §1): a dry run with a
//! disarmed [`CrashPoint`] counts the durable steps a workload takes, then
//! the sweeps arm each (or a sampled) step index in turn and drive the same
//! workload into the crash.

use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

use bam::core::{decode_records, JournalRecord};
use bam::core::{BamArray, BamConfig, BamError, BamSystem, CrashPoint};

/// 16 cache lines of 64 u64 elements under the 512-byte test-scale line.
const ELEMS: u64 = 16 * 64;

/// One workload step: an application write or a full cache flush.
#[derive(Debug, Clone, Copy)]
enum Op {
    Write { idx: u64, value: u64 },
    Flush,
}

/// Decodes the sampled op stream: `flush_after` turns a write into a
/// write-then-flush pair, so flushes land at arbitrary plan positions.
fn plan_from(ops: &[(u64, u64, bool)]) -> Vec<Op> {
    let mut plan = Vec::with_capacity(ops.len() * 2);
    for &(idx_sel, value, flush_after) in ops {
        plan.push(Op::Write {
            idx: idx_sel % ELEMS,
            value,
        });
        if flush_after {
            plan.push(Op::Flush);
        }
    }
    plan
}

/// A crash-injectable system over a zero-preloaded array.
fn rig(cp: &Arc<CrashPoint>) -> (BamSystem, BamArray<u64>) {
    let sys = BamSystem::with_crash_point(BamConfig::test_scale(), cp.clone()).unwrap();
    let arr = sys.create_array::<u64>(ELEMS).unwrap();
    arr.preload(&vec![0u64; ELEMS as usize]).unwrap();
    (sys, arr)
}

/// Drives `plan` into the (possibly crashing) stack. Returns the
/// acknowledged state: index → last value whose write returned `Ok`. Once
/// the crash point trips, every further durable operation must fail with
/// [`BamError::Crashed`] — anything else is a bug.
fn apply_plan(sys: &BamSystem, arr: &BamArray<u64>, plan: &[Op]) -> HashMap<u64, u64> {
    let mut acked = HashMap::new();
    for op in plan {
        match *op {
            Op::Write { idx, value } => match arr.write(idx, value) {
                Ok(()) => {
                    acked.insert(idx, value);
                }
                Err(BamError::Crashed) => {}
                Err(other) => panic!("unexpected write error {other:?}"),
            },
            Op::Flush => match sys.flush() {
                Ok(_) => {}
                Err(BamError::Crashed) => {}
                Err(other) => panic!("unexpected flush error {other:?}"),
            },
        }
    }
    acked
}

/// An independent oracle for the no-double-apply invariant: from the journal
/// alone, the lines recovery must touch are exactly those with a write
/// record newer than the newest committed write-back horizon.
fn lines_recovery_must_touch(journal: &[u8]) -> u64 {
    let decoded = decode_records(journal).unwrap();
    let mut writes: HashMap<u64, Vec<u64>> = HashMap::new(); // line -> write lsns
    let mut intents: HashMap<u64, (u64, u64)> = HashMap::new(); // lsn -> (line, covered)
    let mut durable: HashMap<u64, u64> = HashMap::new(); // line -> horizon
    for rec in &decoded.records {
        match rec {
            JournalRecord::Write { lsn, line, .. } => writes.entry(*line).or_default().push(*lsn),
            JournalRecord::WritebackIntent {
                lsn,
                line,
                covered_lsn,
            } => {
                intents.insert(*lsn, (*line, *covered_lsn));
            }
            JournalRecord::WritebackCommit { intent_lsn, .. } => {
                let (line, covered) = intents[intent_lsn];
                let horizon = durable.entry(line).or_insert(0);
                *horizon = (*horizon).max(covered);
            }
        }
    }
    writes
        .iter()
        .filter(|(line, lsns)| {
            let horizon = durable.get(line).copied().unwrap_or(0);
            lsns.iter().any(|&lsn| lsn > horizon)
        })
        .count() as u64
}

/// Runs `plan` into a crash armed at durable step `crash_step` (tearing the
/// journal append, if that is what the step is, to `torn_bytes`), recovers,
/// and asserts every invariant. Panics (via assert) on any violation.
fn crash_recover_check(plan: &[Op], crash_step: u64, torn_bytes: u64) {
    let cp = Arc::new(CrashPoint::new());
    let (sys, arr) = rig(&cp);
    cp.arm(crash_step, torn_bytes);
    let acked = apply_plan(&sys, &arr, plan);

    // The journal image that survived the crash drives the reboot.
    let journal = sys.journal().unwrap().snapshot();
    let report = sys.recover_from_journal(&journal).unwrap();

    // (b) No completed write-back is double-applied: recovery touched
    // exactly the lines the journal proves have redo work.
    assert_eq!(
        report.replayed_lines,
        lines_recovery_must_touch(&journal),
        "step {crash_step}: replayed lines disagree with the journal oracle"
    );

    // (a) No acknowledged write is lost, and nothing else changed: the whole
    // array must equal preload-zeros overwritten by the acknowledged writes.
    for idx in 0..ELEMS {
        let expected = acked.get(&idx).copied().unwrap_or(0);
        assert_eq!(
            arr.read(idx).unwrap(),
            expected,
            "step {crash_step}: element {idx} diverged after recovery"
        );
    }

    // (c) Deterministic replay: recovering the same journal again produces a
    // bit-identical report and leaves the media untouched (idempotent redo).
    let report2 = sys.recover_from_journal(&journal).unwrap();
    assert_eq!(
        report, report2,
        "step {crash_step}: replay is not deterministic"
    );
    for idx in 0..ELEMS {
        let expected = acked.get(&idx).copied().unwrap_or(0);
        assert_eq!(arr.read(idx).unwrap(), expected);
    }

    // The stack is live again: a fresh write-flush-read cycle works.
    arr.write(0, 0xDEAD_BEEF).unwrap();
    sys.flush().unwrap();
    assert_eq!(arr.read(0).unwrap(), 0xDEAD_BEEF);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, .. ProptestConfig::default() })]

    /// The headline sweep: 128 random workloads, each killed at a random
    /// durable step with a random torn-append length, must all recover to
    /// the acknowledged state.
    #[test]
    fn random_crash_points_always_recover(
        ops in prop::collection::vec((any::<u64>(), any::<u64>(), any::<bool>()), 1..40),
        crash_sel in any::<u64>(),
        torn_sel in 0u64..96,
    ) {
        let plan = plan_from(&ops);
        // Dry run with the crash point disarmed: count the durable steps the
        // plan takes, so the armed run samples a *reachable* step (arming at
        // exactly `total` never trips — the no-crash case stays in the sweep).
        let cp = Arc::new(CrashPoint::new());
        let (sys, arr) = rig(&cp);
        let full = apply_plan(&sys, &arr, &plan);
        prop_assert_eq!(full.len(), plan.iter().filter_map(|op| match op {
            Op::Write { idx, .. } => Some(*idx),
            Op::Flush => None,
        }).collect::<std::collections::HashSet<_>>().len());
        let total = cp.steps_taken();
        prop_assert!(total > 0, "a plan with writes must take durable steps");

        crash_recover_check(&plan, crash_sel % (total + 1), torn_sel);
    }
}

/// The exhaustive companion: one fixed eviction-and-flush-heavy plan, killed
/// at *every* durable step it takes, recovers at each of them.
#[test]
fn every_durable_step_of_a_fixed_plan_recovers() {
    let mut plan = Vec::new();
    for i in 0..24u64 {
        plan.push(Op::Write {
            idx: (i * 67) % ELEMS,
            value: i + 1,
        });
        if i % 7 == 3 {
            plan.push(Op::Flush);
        }
    }

    let cp = Arc::new(CrashPoint::new());
    let (sys, arr) = rig(&cp);
    apply_plan(&sys, &arr, &plan);
    let total = cp.steps_taken();
    assert!(
        total >= 24,
        "plan too small to be interesting: {total} steps"
    );

    for step in 0..=total {
        // Vary the tear across the sweep; 56 exceeds a metadata record's
        // length, so both header-torn and payload-torn tails occur.
        crash_recover_check(&plan, step, (step * 13) % 56);
    }
}
