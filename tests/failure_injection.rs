//! Failure-injection tests: the stack must surface device errors cleanly to
//! the application instead of hanging, corrupting data, or poisoning shared
//! state.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bam::core::BamQueuePair;
use bam::core::{BamConfig, BamError, BamSystem};
use bam::gpu::{GpuExecutor, GpuSpec};
use bam::mem::{BumpAllocator, ByteRegion};
use bam::nvme::{NvmeCommand, NvmeStatus, SsdDevice, SsdSpec};

/// A command that fails on the device comes back to exactly the submitting
/// thread as an error, and the queue remains fully usable afterwards.
#[test]
fn injected_device_errors_are_delivered_to_the_right_thread() {
    let region = Arc::new(ByteRegion::new(8 << 20));
    let alloc = BumpAllocator::new(region.len() as u64);
    let mut ssd = SsdDevice::new(SsdSpec::intel_optane_p5800x(), region.clone(), 4 << 20);
    // Fail every command whose LBA is in the "poisoned" range.
    ssd.controller()
        .set_fault_injector(Some(Arc::new(|cmd: &NvmeCommand| {
            (cmd.slba >= 1000 && cmd.slba < 1100).then_some(NvmeStatus::InternalError)
        })));
    let qp = Arc::new(BamQueuePair::new(
        ssd.create_queue_pair(&alloc, 32).unwrap(),
    ));
    ssd.start();

    let failures = AtomicU64::new(0);
    let successes = AtomicU64::new(0);
    std::thread::scope(|s| {
        for t in 0..6u64 {
            let qp = qp.clone();
            let dst = alloc.alloc(512, 512).unwrap();
            let failures = &failures;
            let successes = &successes;
            s.spawn(move || {
                for i in 0..60u64 {
                    let lba = t * 300 + i * 5; // some land in [1000, 1100)
                    match qp.read_and_wait(lba, 1, dst) {
                        Ok(_) => {
                            successes.fetch_add(1, Ordering::Relaxed);
                            assert!(!(1000..1100).contains(&lba), "poisoned lba {lba} succeeded");
                        }
                        Err(BamError::Storage(_)) => {
                            failures.fetch_add(1, Ordering::Relaxed);
                            assert!((1000..1100).contains(&lba), "healthy lba {lba} failed");
                        }
                        Err(other) => panic!("unexpected error {other:?}"),
                    }
                }
            });
        }
    });
    assert_eq!(
        failures.load(Ordering::Relaxed) + successes.load(Ordering::Relaxed),
        360
    );
    assert!(
        failures.load(Ordering::Relaxed) > 0,
        "the poisoned range must have been hit"
    );
}

/// A cache-miss fetch that fails on the device propagates the error, leaves
/// the line unlocked (not stuck busy), and lets a later retry succeed once
/// the fault clears — all through the public `BamSystem` stack.
#[test]
fn cache_miss_errors_do_not_wedge_the_line() {
    let system = BamSystem::new(BamConfig::test_scale()).unwrap();
    let arr = system.create_array::<u64>(4_096).unwrap();
    arr.preload(&(0..4_096u64).collect::<Vec<_>>()).unwrap();

    // Warm one line, then poison every device through the public hook: all
    // fetches (including their bounded backoff retries) now fail.
    assert_eq!(arr.read(0).unwrap(), 0);
    let flag = Arc::new(std::sync::atomic::AtomicBool::new(true));
    for d in 0..system.config().num_ssds {
        let flag = flag.clone();
        system.set_fault_injector(
            d,
            Some(Arc::new(move |_cmd: &NvmeCommand| {
                flag.load(Ordering::Relaxed)
                    .then_some(NvmeStatus::InternalError)
            })),
        );
    }

    // A miss exhausts its retry budget and surfaces a typed storage error.
    let retries_before = system.metrics().storage_retries;
    assert!(matches!(arr.read(1_000), Err(BamError::Storage(_))));
    assert_eq!(
        system.metrics().storage_retries,
        retries_before + u64::from(system.config().fetch_retries),
        "every configured retry must be spent before giving up"
    );
    // The already-cached line keeps serving hits while the devices are down.
    assert_eq!(arr.read(0).unwrap(), 0);

    // Clearing the fault proves the missed line was left unlocked, not
    // wedged busy: the very same access now completes.
    flag.store(false, Ordering::Relaxed);
    assert_eq!(arr.read(1_000).unwrap(), 1_000);
    for d in 0..system.config().num_ssds {
        system.set_fault_injector(d, None);
    }
}

/// Exhausting GPU memory or the storage namespace is reported as a typed
/// error, not a panic.
#[test]
fn resource_exhaustion_is_reported_cleanly() {
    let mut cfg = BamConfig::test_scale();
    cfg.ssd_capacity_bytes = 1 << 20;
    let system = BamSystem::new(cfg).unwrap();
    // Namespace exhaustion.
    let err = system.create_array::<u64>(10 << 20).unwrap_err();
    assert!(matches!(err, BamError::OutOfStorageCapacity { .. }));
    // GPU memory exhaustion: a cache bigger than GPU memory.
    let mut cfg = BamConfig::test_scale();
    cfg.cache_bytes = 1 << 30;
    cfg.gpu_memory_bytes = 1 << 20;
    assert!(matches!(
        BamSystem::new(cfg),
        Err(BamError::OutOfDeviceMemory { .. })
    ));
}

/// When every cache slot is pinned by concurrent threads, further misses
/// report thrashing instead of deadlocking, and the system recovers once the
/// pins are released.
#[test]
fn cache_thrashing_reports_and_recovers() {
    let mut cfg = BamConfig::test_scale();
    cfg.cache_bytes = 4 * 512; // four slots
    let system = BamSystem::new(cfg).unwrap();
    let arr = system.create_array::<u64>(4_096).unwrap();
    arr.preload(&(0..4_096u64).collect::<Vec<_>>()).unwrap();
    let exec = GpuExecutor::with_workers(GpuSpec::a100_80gb(), 4);
    // Hammer many distinct lines; with only 4 slots and 4 workers this may
    // transiently thrash but must never hang, and reads that do complete must
    // be correct.
    let errors = AtomicU64::new(0);
    exec.launch(512, |warp| {
        for (_lane, tid) in warp.lanes() {
            match arr.read(tid as u64 * 7 % 4096) {
                Ok(v) => assert_eq!(v, tid as u64 * 7 % 4096),
                Err(BamError::CacheThrashing) => {
                    errors.fetch_add(1, Ordering::Relaxed);
                }
                Err(e) => panic!("unexpected error {e:?}"),
            }
        }
    });
    // Afterwards the cache still works.
    assert_eq!(arr.read(123).unwrap(), 123);
}
