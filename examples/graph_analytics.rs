//! Graph analytics on BaM: BFS and connected components over a synthetic
//! GAP-kron-like graph whose edge list lives on the simulated SSDs.
//!
//! Reproduces the §5.2 workflow end to end at reduced scale: generate the
//! dataset, place it on storage, traverse it on demand from GPU threads,
//! validate against a host reference, and report the paper-style time
//! breakdown for BaM and the host-memory Target baseline.
//!
//! Run with: `cargo run --release --example graph_analytics`

use bam::baselines::{BamPerformanceModel, TargetSystem};
use bam::core::{BamConfig, BamSystem};
use bam::gpu::{GpuExecutor, GpuSpec};
use bam::nvme::SsdSpec;
use bam::timing::SsdArrayModel;
use bam::workloads::graph::{
    bfs_bam, bfs_reference, cc_bam, cc_reference, graph_demand, upload_edge_list, DatasetDescriptor,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The K (GAP-kron) dataset of Table 3, generated at reduced scale.
    let descriptor = DatasetDescriptor::table3().remove(0);
    let graph = descriptor.generate(1.0e-5, 42);
    println!(
        "{}: {} nodes, {} directed edges ({} KiB edge list)",
        descriptor.name,
        graph.num_nodes(),
        graph.num_edges(),
        graph.edge_list_bytes() / 1024
    );

    // A 4-SSD BaM system with the cache sized like the paper's (8 GB : 30 GB).
    let config = BamConfig {
        cache_bytes: (graph.edge_list_bytes() as f64 * 0.27) as u64,
        cache_line_bytes: 512,
        num_ssds: 4,
        ssd_capacity_bytes: graph.edge_list_bytes() * 4,
        queue_pairs_per_ssd: 8,
        queue_depth: 64,
        gpu_memory_bytes: 64 << 20,
        ..BamConfig::default()
    };
    let system = BamSystem::new(config)?;
    let edges = upload_edge_list(&system, &graph)?;
    let exec = GpuExecutor::new(GpuSpec::a100_80gb());

    // BFS through BaM, validated against the host reference.
    let source = graph.nodes_with_degree_at_least(3)[0];
    system.reset_metrics();
    let bfs = bfs_bam(&graph.offsets, &edges, source, &exec)?;
    assert_eq!(
        bfs.distances,
        bfs_reference(&graph, source).distances,
        "BFS mismatch"
    );
    let bfs_metrics = system.metrics();
    println!(
        "\nBFS from node {source}: reached {} nodes in {} levels, hit rate {:.1}%",
        bfs.reached(),
        bfs.iterations,
        bfs_metrics.hit_rate() * 100.0
    );

    // Connected components through BaM.
    system.reset_metrics();
    let cc = cc_bam(&graph.offsets, &edges, &exec)?;
    assert_eq!(cc.labels, cc_reference(&graph).labels, "CC mismatch");
    println!(
        "CC: {} components in {} iterations",
        cc.num_components(),
        cc.iterations
    );

    // Paper-style timing: convert the measured counts into the Figure 7
    // comparison against the host-memory Target system (full-scale model).
    let storage = SsdArrayModel::prototype(SsdSpec::intel_optane_p5800x(), 4);
    let bam_model = BamPerformanceModel::new(storage.clone(), 512, 1 << 17);
    let bam_time = bam_model.evaluate(&bfs_metrics, bfs.edges_traversed);
    let target = TargetSystem::prototype(storage).evaluate(&graph_demand(
        &graph,
        bfs.edges_traversed,
        512,
        1 << 17,
    ));
    println!("\nBFS at this scale — BaM: {bam_time}");
    println!("BFS at this scale — Target (host memory + file load): {target}");
    println!(
        "BaM vs Target speedup: {:.2}x",
        bam_time.speedup_vs(&target)
    );
    Ok(())
}
