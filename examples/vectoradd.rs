//! Write-intensive workload: vectorAdd with inputs and output on storage
//! (§5.4). Demonstrates the write-back cache and explicit flush.
//!
//! Run with: `cargo run --release --example vectoradd`

use bam::core::{BamConfig, BamSystem};
use bam::gpu::{GpuExecutor, GpuSpec};
use bam::workloads::vectoradd::{setup, vectoradd_bam};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: u64 = 200_000;
    let system = BamSystem::new(BamConfig {
        ssd_capacity_bytes: 32 << 20,
        gpu_memory_bytes: 16 << 20,
        cache_bytes: 512 * 1024,
        cache_line_bytes: 512,
        num_ssds: 2,
        queue_pairs_per_ssd: 8,
        queue_depth: 64,
        ..BamConfig::default()
    })?;
    let (a, b, out) = setup(&system, n)?;
    let exec = GpuExecutor::new(GpuSpec::a100_80gb());

    let result = vectoradd_bam(&system, &a, &b, &out, &exec)?;
    println!(
        "computed {} elements ({} reads, {} writes)",
        result.elements, result.reads, result.writes
    );

    // Spot-check durability: out[i] = a[i] + b[i] = 3i, flushed to the SSDs.
    for idx in [0u64, n / 2, n - 1] {
        assert_eq!(out.read(idx)?, 3.0 * idx as f64);
    }
    let m = system.metrics();
    println!(
        "cache: hit rate {:.1}%, {} write-backs; storage: {} reads / {} writes",
        m.hit_rate() * 100.0,
        m.cache_writebacks,
        m.read_requests,
        m.write_requests
    );
    println!("all output elements verified against a[i] + b[i]");
    Ok(())
}
