//! Data analytics on BaM: the NYC-taxi-style queries Q0–Q5 (§5.3).
//!
//! Columns live on the simulated SSDs; the distance column is scanned and the
//! dependent metric columns are fetched on demand only for the ~0.03 % of
//! rows that pass the 30-mile filter — which is why BaM's I/O amplification
//! stays near 1 while a proactive engine (RAPIDS) transfers whole columns.
//!
//! Run with: `cargo run --release --example data_analytics`

use bam::baselines::RapidsModel;
use bam::core::{BamConfig, BamSystem};
use bam::gpu::{GpuExecutor, GpuSpec};
use bam::workloads::analytics::{query_bam, query_reference, BamTaxiTable, TaxiTable};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rows = 60_000;
    let table = TaxiTable::generate(rows, 0.003, 7);
    println!(
        "generated {} trips, {} of them at least 30 miles",
        table.rows(),
        table.selected_rows()
    );

    let config = BamConfig {
        cache_line_bytes: 512,
        cache_bytes: 256 * 1024,
        num_ssds: 4,
        ssd_capacity_bytes: table.column_bytes() * 8,
        queue_pairs_per_ssd: 8,
        queue_depth: 64,
        gpu_memory_bytes: 32 << 20,
        ..BamConfig::default()
    };
    let system = BamSystem::new(config)?;
    let bam_table = BamTaxiTable::upload(&system, &table)?;
    let exec = GpuExecutor::new(GpuSpec::a100_80gb());
    let rapids = RapidsModel::prototype();

    println!("\nquery  selected  aggregate      BaM I/O amp   RAPIDS I/O amp (full scale)");
    for q in 0..=5usize {
        system.reset_metrics();
        let out = query_bam(&bam_table, q, &exec)?;
        let reference = query_reference(&table, q);
        assert_eq!(out.selected_rows, reference.selected_rows);
        let metrics = system.metrics();
        let rapids_amp = table.rapids_query(q).io_amplification();
        println!(
            "Q{q}     {:>8}  {:>12.2}   {:>6.2}x       {:>6.2}x",
            out.selected_rows,
            out.aggregate,
            metrics.io_amplification(),
            rapids_amp
        );
        // The RAPIDS model also gives the full-scale time breakdown (Fig 14).
        let r = rapids.evaluate(&table.rapids_query(q));
        if q == 5 {
            println!(
                "\nRAPIDS Q5 at this table size: {:.3}s total ({:.0}% row-group init, {:.0}% cleanup)",
                r.total_s(),
                100.0 * r.row_group_init_s / r.total_s(),
                100.0 * r.cleanup_s / r.total_s()
            );
        }
    }
    Ok(())
}
