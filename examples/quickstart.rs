//! Quickstart: build a BaM system, map a storage-backed array, and access it
//! from simulated GPU threads.
//!
//! Run with: `cargo run --example quickstart`

use bam::core::{BamConfig, BamSystem};
use bam::gpu::{GpuExecutor, GpuSpec, WARP_SIZE};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build a (scaled-down) BaM system: 2 simulated Optane SSDs, 512 B
    //    cache lines, a 64 KiB software cache, all allocated in simulated GPU
    //    memory — the same structure as the paper's prototype.
    let system = BamSystem::new(BamConfig::test_scale())?;
    println!(
        "BaM system up: {} SSDs, {} B cache lines",
        system.config().num_ssds,
        system.config().cache_line_bytes
    );

    // 2. Map a storage-backed array (the bam::array<T> abstraction) and
    //    preload a dataset onto the SSDs.
    let n: u64 = 100_000;
    let data = system.create_array::<f32>(n)?;
    data.preload(&(0..n).map(|i| (i as f32).sqrt()).collect::<Vec<_>>())?;

    // 3. Launch a GPU kernel: every thread reads one element on demand.
    //    Threads in a warp accessing the same cache line share one probe and
    //    one storage request (warp coalescing).
    let exec = GpuExecutor::new(GpuSpec::a100_80gb());
    let sum = std::sync::atomic::AtomicU64::new(0);
    exec.launch(n as usize, |warp| {
        let mut indices = [None; WARP_SIZE];
        for (lane, tid) in warp.lanes() {
            indices[lane] = Some(tid as u64);
        }
        let values = data.gather_warp(warp, &indices).expect("gather");
        for v in values.into_iter().flatten() {
            sum.fetch_add(v as u64, std::sync::atomic::Ordering::Relaxed);
        }
    });
    println!(
        "sum of sqrt values ≈ {}",
        sum.load(std::sync::atomic::Ordering::Relaxed)
    );

    // 4. Inspect what the software stack did (MetricsSnapshot's Display
    //    prints the cache and storage summary).
    println!("{}", system.metrics());
    println!("doorbell writes: {}", system.total_doorbell_writes());
    Ok(())
}
