//! Raw random-access throughput through the BaM I/O stack (§4.3, Figure 4):
//! uncached 512 B random reads and writes against an array of simulated
//! Optane SSDs, reporting the functional command/doorbell counts and the
//! throughput the calibrated storage envelope assigns to the same pattern at
//! full scale.
//!
//! Run with: `cargo run --release --example raw_throughput`

use bam::nvme::SsdSpec;
use bam::timing::SsdArrayModel;
use bam::workloads::micro::{build_raw_system, random_read, random_write};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for num_ssds in [1usize, 2, 4] {
        let system = build_raw_system(
            SsdSpec::intel_optane_p5800x(),
            num_ssds,
            4,
            64,
            512,
            8 << 20,
        )?;
        let n = (4u64 << 20) / 8;
        let array = system.create_array::<u64>(n)?;
        array.preload(&(0..n).collect::<Vec<_>>())?;

        let reads = random_read(&system, &array, 2_000, 256, 4, 1)?;
        let writes = random_write(&system, &array, 500, 128, 4, 2)?;
        let model = SsdArrayModel::prototype(SsdSpec::intel_optane_p5800x(), num_ssds);
        println!(
            "{num_ssds} SSD(s): {} read cmds ({} doorbells), {} write cmds; \
             full-scale envelope: {:.1}M read IOPS / {:.1}M write IOPS @512B",
            reads.commands,
            reads.doorbell_writes,
            writes.commands,
            model.read_iops(512, 1 << 22) / 1e6,
            model.write_iops(512, 1 << 22) / 1e6,
        );
    }
    Ok(())
}
