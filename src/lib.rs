//! # bam — facade crate for the BaM (ASPLOS'23) Rust reproduction
//!
//! Re-exports the public API of every crate in the workspace so examples,
//! integration tests, and downstream users can depend on a single crate.
//!
//! See the workspace `README.md` for an overview and `DESIGN.md` for the
//! system inventory and per-experiment index.

pub use bam_baselines as baselines;
pub use bam_core as core;
pub use bam_gpu_sim as gpu;
pub use bam_mem as mem;
pub use bam_nvme_sim as nvme;
pub use bam_obs as obs;
pub use bam_pcie as pcie;
pub use bam_sim as sim;
pub use bam_timing as timing;
pub use bam_workloads as workloads;
